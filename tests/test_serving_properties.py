"""Property tests: simulator invariants on seeded randomized traces.

Every scenario draws a random trace (shapes, arrival process, service
levels), a random serving configuration (scheduler, cluster counts,
fleet composition, batch policy), runs the discrete-event simulator, and
checks invariants that must hold for *any* configuration:

* conservation — every offered request is completed or abandoned, once;
* no double-booking — a unit's dispatch intervals never overlap (never
  exceed the decode-slot count under continuous batching);
* event monotonicity — dispatch order is chronological and every record's
  own times are ordered (arrival <= start <= finish);
* report/oracle agreement — every ``ServingReport`` statistic matches a
  from-scratch recompute over the raw completed/abandoned records.
"""

import numpy as np
import pytest

from repro.serving import (
    ApplianceFleet,
    ApplianceServer,
    ContinuousBatching,
    DegradedModePolicy,
    DynamicBatching,
    FaultSchedule,
    FleetMember,
    NetworkLink,
    NetworkModel,
    Outage,
    RetryPolicy,
    SCHEDULERS,
    ServiceRequest,
)
from repro.workloads import Workload
from serving_doubles import (
    BatchableTokenPlatform as _BatchableTokenPlatform,
    FixedLatencyPlatform as _FixedLatencyPlatform,
    TokenProportionalPlatform as _TokenProportionalPlatform,
)

SEEDS = list(range(12))


def random_trace(rng: np.random.Generator) -> list[ServiceRequest]:
    """A random request trace: bursty-ish arrivals, mixed service levels."""
    count = int(rng.integers(0, 45))
    trace = []
    time_s = 0.0
    for request_id in range(count):
        time_s += float(rng.exponential(0.4)) * (0.1 if rng.random() < 0.3 else 1.0)
        workload = Workload(
            int(rng.integers(1, 64)), int(rng.integers(1, 24))
        )
        slo_s = float(rng.uniform(0.5, 20.0)) if rng.random() < 0.4 else None
        patience_s = float(rng.uniform(0.5, 15.0)) if rng.random() < 0.4 else None
        trace.append(
            ServiceRequest(
                request_id=request_id,
                arrival_time_s=time_s,
                workload=workload,
                priority=int(rng.integers(0, 3)),
                slo_s=slo_s,
                patience_s=patience_s,
                service_class=str(rng.choice(["chat", "article", "default"])),
            )
        )
    return trace


def random_scenario(seed: int):
    """Build (trace, server, context) for one randomized configuration."""
    rng = np.random.default_rng(seed)
    trace = random_trace(rng)
    scheduler = str(rng.choice(sorted(SCHEDULERS)))
    batch_choice = str(rng.choice(["none", "dynamic", "continuous"]))
    max_batch_size = int(rng.integers(2, 6))
    if batch_choice == "dynamic":
        batch_policy = DynamicBatching(max_batch_size, float(rng.uniform(0.0, 2.0)))
    elif batch_choice == "continuous":
        batch_policy = ContinuousBatching(max_batch_size)
    else:
        batch_policy, max_batch_size = "none", 1
    if rng.random() < 0.5:
        server = ApplianceServer(
            _BatchableTokenPlatform(
                fixed_ms_per_token=float(rng.uniform(50.0, 400.0)),
                marginal_ms_per_token=float(rng.uniform(1.0, 40.0)),
            ),
            num_clusters=int(rng.integers(1, 4)),
            platform_name="solo",
            scheduler=scheduler,
            batch_policy=batch_policy,
            max_batch_size=max_batch_size,
        )
    else:
        server = ApplianceFleet(
            [
                FleetMember(
                    "fast",
                    _FixedLatencyPlatform(float(rng.uniform(0.2, 1.5))),
                    num_clusters=int(rng.integers(1, 3)),
                ),
                FleetMember(
                    "batchy",
                    _BatchableTokenPlatform(
                        fixed_ms_per_token=float(rng.uniform(100.0, 500.0))
                    ),
                    num_clusters=int(rng.integers(1, 3)),
                    max_batch_size=max_batch_size if max_batch_size > 1 else 4,
                ),
            ],
            scheduler=scheduler,
            batch_policy=batch_policy,
        )
    continuous = isinstance(batch_policy, ContinuousBatching)
    return trace, server, {"continuous": continuous,
                           "max_batch_size": max_batch_size}


@pytest.mark.parametrize("seed", SEEDS)
class TestSimulatorInvariants:
    def test_conservation(self, seed):
        trace, server, _ = random_scenario(seed)
        report = server.serve(trace)
        # offered == completed + abandoned, and each request appears exactly
        # once across the two outcome lists.
        assert report.num_offered == len(trace)
        outcome_ids = sorted(
            [c.request.request_id for c in report.completed]
            + [a.request.request_id for a in report.abandoned]
        )
        assert outcome_ids == sorted(r.request_id for r in trace)

    def test_no_unit_double_booking(self, seed):
        trace, server, context = random_scenario(seed)
        report = server.serve(trace)
        intervals_by_unit: dict[int, list[tuple[float, float]]] = {}
        seen_batches = set()
        for completed in report.completed:
            if completed.batch_id in seen_batches:
                continue
            seen_batches.add(completed.batch_id)
            intervals_by_unit.setdefault(completed.cluster_id, []).append(
                (completed.start_time_s, completed.finish_time_s)
            )
        limit = context["max_batch_size"] if context["continuous"] else 1
        for intervals in intervals_by_unit.values():
            events = []
            for start, finish in intervals:
                events.append((start, 1))
                events.append((finish, -1))
            concurrent = 0
            # Finishes release before coincident starts claim the slot.
            for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
                concurrent += delta
                assert concurrent <= limit

    def test_event_times_monotone(self, seed):
        trace, server, _ = random_scenario(seed)
        report = server.serve(trace)
        starts = [c.start_time_s for c in report.completed]
        # Dispatch order is chronological...
        assert starts == sorted(starts)
        # ...and each record's own timeline is ordered.
        for completed in report.completed:
            assert completed.request.arrival_time_s <= completed.start_time_s
            assert completed.start_time_s <= completed.finish_time_s
        for abandoned in report.abandoned:
            assert abandoned.abandoned_time_s >= abandoned.request.arrival_time_s

    def test_report_matches_recompute_oracle(self, seed):
        trace, server, _ = random_scenario(seed)
        report = server.serve(trace)
        completed, abandoned = report.completed, report.abandoned

        responses = [c.finish_time_s - c.request.arrival_time_s for c in completed]
        queueing = [c.start_time_s - c.request.arrival_time_s for c in completed]
        assert report.num_requests == len(completed)
        assert report.num_abandoned == len(abandoned)
        assert report.num_offered == len(completed) + len(abandoned)

        if completed:
            assert report.mean_response_time_s == pytest.approx(np.mean(responses))
            assert report.mean_queueing_delay_s == pytest.approx(np.mean(queueing))
            for percentile in (50.0, 95.0, 99.0):
                assert report.response_time_percentile_s(percentile) == pytest.approx(
                    np.percentile(responses, percentile)
                )
            first_arrival = min(r.arrival_time_s for r in trace)
            makespan = max(c.finish_time_s for c in completed) - first_arrival
            assert report.first_arrival_s == pytest.approx(first_arrival)
            assert report.makespan_s == pytest.approx(makespan)
            if makespan > 0:
                assert report.requests_per_hour == pytest.approx(
                    len(completed) / makespan * 3600.0
                )
                tokens = sum(c.request.workload.output_tokens for c in completed)
                assert report.output_tokens_per_second == pytest.approx(
                    tokens / makespan
                )
                busy = {}
                for c in completed:
                    busy.setdefault(c.batch_id, c.finish_time_s - c.start_time_s)
                assert report.utilization == pytest.approx(
                    sum(busy.values()) / (makespan * report.num_clusters)
                )
        else:
            assert report.mean_response_time_s == 0.0
            assert report.response_time_percentile_s(99) == 0.0
            assert report.utilization == 0.0

        # Abandonment and SLO accounting.
        if report.num_offered:
            assert report.abandonment_rate == pytest.approx(
                len(abandoned) / (len(completed) + len(abandoned))
            )
        late = sum(
            1
            for c in completed
            if c.request.slo_s is not None
            and c.finish_time_s - c.request.arrival_time_s > c.request.slo_s
        )
        dropped = sum(1 for a in abandoned if a.request.slo_s is not None)
        assert report.slo_violations == late + dropped
        sloed = sum(1 for c in completed if c.request.slo_s is not None) + dropped
        if sloed:
            assert report.slo_violation_rate == pytest.approx((late + dropped) / sloed)
        assert report.slo_attainment == pytest.approx(1.0 - report.slo_violation_rate)

        # Per-class percentiles match a filtered recompute.
        classes = sorted(
            {c.request.service_class for c in completed}
            | {a.request.service_class for a in abandoned}
        )
        assert report.service_classes() == classes
        by_class = report.percentiles_by_class(95.0)
        for label in classes:
            values = [
                c.finish_time_s - c.request.arrival_time_s
                for c in completed
                if c.request.service_class == label
            ]
            expected = np.percentile(values, 95.0) if values else 0.0
            assert by_class[label] == pytest.approx(expected)

        # Batch statistics match a recompute over batch groups.
        groups: dict[object, list] = {}
        for index, c in enumerate(completed):
            key = c.batch_id if c.batch_id is not None else ("solo", index)
            groups.setdefault(key, []).append(c)
        assert report.num_batches == len(groups)
        if groups:
            sizes = [members[0].batch_size for members in groups.values()]
            assert report.mean_batch_size == pytest.approx(np.mean(sizes))
            distribution: dict[int, int] = {}
            for size in sizes:
                distribution[size] = distribution.get(size, 0) + 1
            assert report.batch_size_distribution() == distribution
            gathers = sorted(
                members[0].start_time_s
                - min(m.request.arrival_time_s for m in members)
                for members in groups.values()
            )
            assert sorted(report.batch_gather_delays_s()) == pytest.approx(gathers)
            assert report.mean_batch_gather_delay_s == pytest.approx(np.mean(gathers))
            assert report.batch_gather_delay_percentile_s(90.0) == pytest.approx(
                np.percentile(gathers, 90.0)
            )
        else:
            assert report.mean_batch_size == 0.0
            assert report.batch_gather_delays_s().size == 0

    def test_completed_requests_meet_their_recorded_unit(self, seed):
        trace, server, _ = random_scenario(seed)
        report = server.serve(trace)
        valid_units = set(range(report.num_clusters))
        for completed in report.completed:
            assert completed.cluster_id in valid_units
            assert completed.appliance in report.appliance_clusters


def random_fault_scenario(seed: int):
    """Build (trace, server) for one randomized fault-bearing configuration.

    Faults are aggressive (per-unit MTBF comparable to the trace span) so
    kills, retries, and failures all actually occur across the seed set.
    """
    rng = np.random.default_rng(10_000 + seed)
    trace = random_trace(rng)
    horizon_s = (trace[-1].arrival_time_s + 10.0) if trace else 10.0
    faults = FaultSchedule.poisson(
        mtbf_s=float(rng.uniform(1.0, 8.0)),
        mttr_s=float(rng.uniform(0.5, 4.0)) if rng.random() < 0.8 else None,
        duration_s=horizon_s,
        seed=seed,
    )
    retry_policy = RetryPolicy(
        max_attempts=int(rng.integers(1, 5)),
        backoff_s=float(rng.uniform(0.01, 0.5)),
        backoff_multiplier=float(rng.uniform(1.0, 2.5)),
        retry_budget=int(rng.integers(0, 15)) if rng.random() < 0.3 else None,
    )
    degraded_mode = (
        DegradedModePolicy(shed_priority_above=int(rng.integers(0, 2)))
        if rng.random() < 0.3
        else None
    )
    if rng.random() < 0.5:
        batch_policy, max_batch_size = "none", 1
    else:
        max_batch_size = int(rng.integers(2, 6))
        batch_policy = ContinuousBatching(max_batch_size)
    server = ApplianceServer(
        _BatchableTokenPlatform(
            fixed_ms_per_token=float(rng.uniform(50.0, 400.0)),
            marginal_ms_per_token=float(rng.uniform(1.0, 40.0)),
        ),
        num_clusters=int(rng.integers(1, 4)),
        platform_name="faulty",
        scheduler=str(rng.choice(sorted(SCHEDULERS))),
        batch_policy=batch_policy,
        max_batch_size=max_batch_size,
        faults=faults,
        retry_policy=retry_policy,
        degraded_mode=degraded_mode,
    )
    return trace, server


@pytest.mark.parametrize("seed", SEEDS)
class TestFaultInvariants:
    def test_conservation_includes_failures_and_retries(self, seed):
        trace, server = random_fault_scenario(seed)
        report = server.serve(trace)
        # Every offered request ends in exactly one outcome list, even when
        # kills, retries, sheds, and exhausted budgets are in play.
        assert report.num_offered == len(trace)
        outcome_ids = sorted(
            [c.request.request_id for c in report.completed]
            + [a.request.request_id for a in report.abandoned]
            + [f.request.request_id for f in report.failed]
        )
        assert outcome_ids == sorted(r.request_id for r in trace)
        # Attempt accounting: each record's attempts-1 kills were requeued,
        # except requests that abandoned mid-retry (retries may exceed the
        # recoverable sum, never undercut it).
        recoverable = sum(c.attempts - 1 for c in report.completed) + sum(
            f.attempts - 1 for f in report.failed
        )
        assert report.num_retries >= recoverable
        assert all(c.attempts >= 1 for c in report.completed)
        assert all(f.attempts >= 1 for f in report.failed)

    def test_no_dispatch_lands_on_a_down_unit(self, seed):
        trace, server = random_fault_scenario(seed)
        report = server.serve(trace)
        for completed in report.completed:
            for window_start, window_end in report.unit_downtime.get(
                completed.cluster_id, ()
            ):
                # A completed record's service interval never strictly
                # overlaps its own unit's downtime: work caught by an outage
                # is killed, not completed.
                assert (
                    completed.finish_time_s <= window_start
                    or completed.start_time_s >= window_end
                )

    def test_availability_matches_recompute_oracle(self, seed):
        trace, server = random_fault_scenario(seed)
        report = server.serve(trace)
        if report.makespan_s <= 0:
            assert report.availability == 1.0
            return
        window_start = report.first_arrival_s
        window_end = window_start + report.makespan_s
        clipped = {}
        for unit_id in report.unit_appliance:
            total = 0.0
            for start, end in report.unit_downtime.get(unit_id, ()):
                total += max(
                    0.0, min(end, window_end) - max(start, window_start)
                )
            clipped[unit_id] = total
        assert report.downtime_by_unit() == pytest.approx(clipped)
        expected = 1.0 - sum(clipped.values()) / (
            report.makespan_s * report.num_clusters
        )
        assert report.availability == pytest.approx(expected)
        by_appliance = report.availability_by_appliance()
        assert set(by_appliance) == set(report.appliance_clusters)
        for value in by_appliance.values():
            assert 0.0 <= value <= 1.0

    def test_empty_fault_schedule_is_bit_identical(self, seed):
        trace, server, _ = random_scenario(seed)
        baseline = server.serve(trace)
        trace2, server2, _ = random_scenario(seed)
        server2.faults = FaultSchedule()
        shadowed = server2.serve(trace2)
        # Whole-report equality: an empty schedule compiles to zero events,
        # so the fault-aware loop must be bit-identical to the plain one.
        assert shadowed == baseline


def random_network_scenario(seed: int, link: NetworkLink | None):
    """Build (trace, fleet, outage window) on a randomized 2-rack star.

    Every ``link`` value consumes the identical RNG sequence, so the same
    seed with a priced, zero-cost, or absent (``None``) network serves the
    same trace on the same fleet — the variants differ only in the network
    itself and are comparable record for record.
    """
    rng = np.random.default_rng(20_000 + seed)
    trace = random_trace(rng)
    hosts_per_rack = int(rng.integers(1, 3))
    members = [
        FleetMember(
            f"rack{rack}-host{host}",
            _BatchableTokenPlatform(
                fixed_ms_per_token=float(rng.uniform(50.0, 400.0)),
                marginal_ms_per_token=float(rng.uniform(1.0, 40.0)),
            ),
            max_batch_size=4,
        )
        for rack in range(2)
        for host in range(hosts_per_rack)
    ]
    scheduler = str(rng.choice(sorted(SCHEDULERS)))
    batch_choice = str(rng.choice(["none", "dynamic", "continuous"]))
    if batch_choice == "dynamic":
        batch_policy = DynamicBatching(4, float(rng.uniform(0.0, 2.0)))
    elif batch_choice == "continuous":
        batch_policy = ContinuousBatching(4)
    else:
        batch_policy = "none"
    network = None
    if link is not None:
        network = NetworkModel.star(
            {
                f"rack{rack}": tuple(
                    f"rack{rack}-host{host}" for host in range(hosts_per_rack)
                )
                for rack in range(2)
            },
            ingress="rack0",
            link=link,
        )
    outage_start = float(rng.uniform(0.0, 8.0))
    outage_len = float(rng.uniform(0.5, 8.0))
    fleet = ApplianceFleet(
        members,
        scheduler=scheduler,
        batch_policy=batch_policy,
        network=network,
    )
    return trace, fleet, (outage_start, outage_start + outage_len)


def random_link(seed: int) -> NetworkLink:
    rng = np.random.default_rng(30_000 + seed)
    return NetworkLink(
        latency_s=float(rng.uniform(0.0, 0.5)),
        bandwidth_bytes_per_s=float(rng.uniform(100.0, 10_000.0)),
    )


@pytest.mark.parametrize("seed", SEEDS)
class TestNetworkInvariants:
    def test_conservation_with_network_and_link_faults(self, seed):
        trace, fleet, (start, end) = random_network_scenario(
            seed, random_link(seed)
        )
        fleet.faults = FaultSchedule.scripted(
            Outage(start_s=start, duration_s=end - start, link="rack1")
        )
        report = fleet.serve(trace)
        # A link outage is a partition, not a crash: no kills, no failures,
        # and every offered request still lands in exactly one outcome list.
        assert report.num_failed == 0
        assert report.num_offered == len(trace)
        outcome_ids = sorted(
            [c.request.request_id for c in report.completed]
            + [a.request.request_id for a in report.abandoned]
        )
        assert outcome_ids == sorted(r.request_id for r in trace)
        assert set(report.downtime_by_link()) <= {"rack1"}

    def test_no_dispatch_crosses_a_down_link(self, seed):
        trace, fleet, (start, end) = random_network_scenario(
            seed, random_link(seed)
        )
        fleet.faults = FaultSchedule.scripted(
            Outage(start_s=start, duration_s=end - start, link="rack1")
        )
        report = fleet.serve(trace)
        for completed in report.completed:
            if completed.appliance in report.cross_rack_members:
                # In-flight work may *finish* inside the window (a partition
                # does not kill), but nothing new starts over a down link.
                assert not start < completed.start_time_s < end

    def test_transfer_matches_recompute_oracle(self, seed):
        trace, fleet, _ = random_network_scenario(seed, random_link(seed))
        network = fleet.network
        report = fleet.serve(trace)
        groups: dict[int, list] = {}
        for completed in report.completed:
            groups.setdefault(completed.batch_id, []).append(completed)
        for records in groups.values():
            member = records[0].appliance
            link = network.link_for(member)
            if link is None:
                expected = 0.0
            else:
                expected = link.one_way_s(
                    sum(r.request.workload.input_tokens for r in records)
                    * network.bytes_per_token
                ) + link.one_way_s(
                    sum(r.request.workload.output_tokens for r in records)
                    * network.bytes_per_token
                )
            for record in records:
                # Bitwise equality: the simulator's pricing and the model's
                # own oracle must evaluate the identical expression.
                assert record.transfer_time_s == expected
        dispatch_transfers = [
            d.transfer_time_s for d in report.iter_dispatches()
        ]
        assert report.total_transfer_time_s == pytest.approx(
            sum(dispatch_transfers)
        )
        cross = sum(
            1
            for d in report.iter_dispatches()
            if d.appliance in report.cross_rack_members
        )
        assert report.num_cross_rack_dispatches == cross

    def test_zero_cost_network_is_bit_identical_to_no_network(self, seed):
        trace, fleet, _ = random_network_scenario(seed, NetworkLink())
        priced_free = fleet.serve(trace)
        trace2, bare_fleet, _ = random_network_scenario(seed, None)
        bare = bare_fleet.serve(trace2)
        # A zero-cost link prices every transfer at exactly 0.0 — a bitwise
        # no-op on every finish instant, so the records must match exactly.
        assert priced_free.completed == bare.completed
        assert priced_free.abandoned == bare.abandoned
        assert priced_free.failed == bare.failed
        assert priced_free.makespan_s == bare.makespan_s
        assert priced_free.first_arrival_s == bare.first_arrival_s
        assert priced_free.total_energy_joules == bare.total_energy_joules
        assert priced_free.total_transfer_time_s == 0.0
