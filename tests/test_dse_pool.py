"""Evaluation-pool determinism, persistence, resume, and schema guarding.

The satellite acceptance: a seeded evolutionary search must produce
byte-identical persisted results with jobs=1 vs jobs=4, and resuming from a
half-written results directory must converge to the same front as an
uninterrupted run.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import export
from repro.dse import (
    ApplianceEvaluator,
    Dimension,
    EvaluationPool,
    Objective,
    ObjectiveVector,
    SearchSpace,
    appliance_search_space,
    candidate_seed,
    evolutionary_search,
    result_filename,
)
from repro.errors import ConfigurationError


class SquareEvaluator:
    """Pure-arithmetic evaluator, trivially picklable for worker processes."""

    objectives = (Objective("value", "min"),)

    def evaluate(self, candidate):
        x = int(candidate["x"])
        if x == 13:
            raise ConfigurationError("thirteen is not served")
        return ObjectiveVector(objectives=self.objectives, values=(float(x * x),))


def square_space(levels: int = 8) -> SearchSpace:
    return SearchSpace([Dimension("x", list(range(levels)))])


def read_dir(path: Path) -> dict[str, bytes]:
    return {f.name: f.read_bytes() for f in sorted(path.glob("*.json"))}


class TestCandidateSeed:
    def test_stable_and_key_sensitive(self):
        assert candidate_seed(0, "a=1") == candidate_seed(0, "a=1")
        assert candidate_seed(0, "a=1") != candidate_seed(0, "a=2")
        assert candidate_seed(0, "a=1") != candidate_seed(1, "a=1")

    def test_result_filename_safe_and_collision_resistant(self):
        name = result_filename("backend=dfx|batch=1")
        assert name.endswith(".json")
        assert "|" not in name and "=" not in name
        assert result_filename("a|b") != result_filename("a=b")


class TestEvaluationPool:
    def test_preserves_input_order_with_duplicates(self):
        space = square_space()
        pool = EvaluationPool(SquareEvaluator())
        batch = [space.candidate((3,)), space.candidate((1,)), space.candidate((3,))]
        results = pool.evaluate(batch)
        assert [entry.key for entry in results] == ["x=3", "x=1", "x=3"]
        assert pool.num_evaluated == 2

    def test_infeasible_captured_not_raised(self):
        space = SearchSpace([Dimension("x", [12, 13])])
        pool = EvaluationPool(SquareEvaluator())
        results = pool.evaluate(space.grid())
        assert results[0].feasible
        assert not results[1].feasible
        assert "thirteen" in results[1].infeasible_reason

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            EvaluationPool(SquareEvaluator(), jobs=0)

    def test_parallel_results_match_serial(self, tmp_path):
        space = square_space(12)
        serial = EvaluationPool(
            SquareEvaluator(), jobs=1, results_dir=tmp_path / "serial", space=space
        )
        parallel = EvaluationPool(
            SquareEvaluator(), jobs=4, results_dir=tmp_path / "par", space=space
        )
        a = serial.evaluate(space.grid())
        b = parallel.evaluate(space.grid())
        assert a == b
        assert read_dir(tmp_path / "serial") == read_dir(tmp_path / "par")


class TestSearchDeterminismAcrossJobs:
    """jobs=1 vs jobs=4 must persist byte-identical result files."""

    @staticmethod
    def run(tmp_path: Path, name: str, jobs: int):
        space = appliance_search_space(
            backends=("dfx", "gpu"),
            schedulers=("fifo", "sjf"),
            batch_sizes=(1, 32),
        )
        evaluator = ApplianceEvaluator(
            config="test-small",
            serving_duration_s=20.0,
            arrival_rate_per_s=0.5,
            seed=0,
        )
        result = evolutionary_search(
            space,
            evaluator,
            population_size=6,
            generations=3,
            seed=7,
            jobs=jobs,
            results_dir=tmp_path / name,
        )
        return result, read_dir(tmp_path / name)

    def test_jobs_4_byte_identical_to_serial(self, tmp_path):
        serial_result, serial_files = self.run(tmp_path, "serial", jobs=1)
        parallel_result, parallel_files = self.run(tmp_path, "parallel", jobs=4)
        assert serial_files == parallel_files
        assert parallel_result.front.keys() == serial_result.front.keys()

    def test_resume_from_half_written_dir_converges(self, tmp_path):
        full_result, full_files = self.run(tmp_path, "full", jobs=1)
        # Simulate an interrupted run: keep only half the result files,
        # and corrupt one of the survivors mid-write.
        half_dir = tmp_path / "half"
        half_dir.mkdir()
        names = sorted(full_files)
        for name in names[: len(names) // 2]:
            (half_dir / name).write_bytes(full_files[name])
        survivor = names[0]
        (half_dir / survivor).write_bytes(full_files[survivor][: 40])

        resumed_result, resumed_files = self.run(tmp_path, "half", jobs=1)
        assert resumed_result.front.keys() == full_result.front.keys()
        assert resumed_files == full_files


class TestPersistenceFormat:
    def test_files_round_trip_through_export(self, tmp_path):
        space = square_space()
        pool = EvaluationPool(
            SquareEvaluator(), results_dir=tmp_path, space=space
        )
        pool.evaluate(space.grid())
        for path in sorted(tmp_path.glob("*.json")):
            payload = json.loads(path.read_text())
            entry = export.dse_evaluation_from_dict(payload, space)
            assert entry == pool.results()[entry.key]

    def test_resume_reuses_persisted_results(self, tmp_path):
        space = square_space()
        first = EvaluationPool(SquareEvaluator(), results_dir=tmp_path, space=space)
        first.evaluate(space.grid())

        class ExplodingEvaluator(SquareEvaluator):
            def evaluate(self, candidate):  # pragma: no cover - must not run
                raise AssertionError("resume must not recompute")

        second = EvaluationPool(
            ExplodingEvaluator(), results_dir=tmp_path, space=space
        )
        results = second.evaluate(space.grid())
        assert all(entry.feasible for entry in results)

    def test_unknown_schema_version_rejected(self, tmp_path):
        space = square_space()
        pool = EvaluationPool(SquareEvaluator(), results_dir=tmp_path, space=space)
        pool.evaluate(space.grid())
        victim = sorted(tmp_path.glob("*.json"))[0]
        payload = json.loads(victim.read_text())
        payload["schema_version"] = 99
        victim.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="schema_version"):
            EvaluationPool(SquareEvaluator(), results_dir=tmp_path, space=space)

    def test_corrupt_file_recomputed_and_overwritten(self, tmp_path):
        space = square_space()
        pool = EvaluationPool(SquareEvaluator(), results_dir=tmp_path, space=space)
        pool.evaluate(space.grid())
        victim = sorted(tmp_path.glob("*.json"))[0]
        intact = victim.read_bytes()
        victim.write_bytes(intact[: 25])  # half-written JSON

        fresh = EvaluationPool(SquareEvaluator(), results_dir=tmp_path, space=space)
        fresh.evaluate(space.grid())
        assert victim.read_bytes() == intact

    def test_changed_space_rejected_on_load(self, tmp_path):
        space = square_space()
        pool = EvaluationPool(SquareEvaluator(), results_dir=tmp_path, space=space)
        pool.evaluate(space.grid())
        renamed = SearchSpace([Dimension("y", list(range(8)))])
        with pytest.raises(ConfigurationError):
            EvaluationPool(SquareEvaluator(), results_dir=tmp_path, space=renamed)
