"""Regression tests for fault injection and degraded-mode serving.

The property suite checks invariants over random fault campaigns; the tests
here pin exact behaviors on hand-built scenarios: schedule compilation,
fail-stop and transient outages, member dropout, retry arithmetic and
budgets, degraded-mode shedding, link degradation, edge cases (empty
traces, every request failing, mid-flight batch kills), and the
``num_clusters=None`` capability-count default.
"""

import math

import pytest

from repro.backends import make_backend
from repro.errors import ConfigurationError
from repro.serving import (
    ABANDON_SHED,
    ApplianceFleet,
    ApplianceServer,
    ContinuousBatching,
    Degradation,
    DegradedModePolicy,
    FAIL_BUDGET,
    FAIL_RETRIES,
    FAIL_UNIT,
    FaultSchedule,
    FleetMember,
    Outage,
    RetryPolicy,
    ServiceRequest,
    replay_trace,
)
from repro.serving.faults import EVENT_DOWN, EVENT_UP, FaultProcess, merge_windows
from repro.workloads import Workload
from serving_doubles import FixedLatencyPlatform, BatchableTokenPlatform


def request(request_id, arrival_s, output_tokens=8, **kwargs):
    return ServiceRequest(
        request_id=request_id,
        arrival_time_s=arrival_s,
        workload=Workload(4, output_tokens),
        **kwargs,
    )


def make_server(latency_s=1.0, num_clusters=1, **kwargs):
    return ApplianceServer(
        FixedLatencyPlatform(latency_s),
        num_clusters=num_clusters,
        platform_name="fixed",
        **kwargs,
    )


# --------------------------------------------------------------- compilation
class TestFaultScheduleCompile:
    class _Unit:
        def __init__(self, unit_id, appliance="fixed"):
            self.unit_id = unit_id
            self.appliance = appliance

    def test_empty_schedule_compiles_to_no_events(self):
        compiled = FaultSchedule().compile([self._Unit(0), self._Unit(1)])
        assert compiled.events == ()
        assert compiled.downtime == {}
        assert FaultSchedule().empty

    def test_scripted_windows_merge_and_order(self):
        schedule = FaultSchedule.scripted(
            Outage(start_s=2.0, duration_s=3.0, unit_id=0),
            Outage(start_s=4.0, duration_s=4.0, unit_id=0),  # overlaps above
            Outage(start_s=20.0, unit_id=0),  # fail-stop
        )
        compiled = schedule.compile([self._Unit(0)])
        assert compiled.downtime == {0: ((2.0, 8.0), (20.0, math.inf))}
        kinds = [(e.time_s, e.kind) for e in compiled.events]
        # The merged transient window emits down+up; the fail-stop only down.
        assert kinds == [(2.0, EVENT_DOWN), (8.0, EVENT_UP), (20.0, EVENT_DOWN)]

    def test_member_outage_takes_every_unit_of_the_appliance(self):
        units = [self._Unit(0, "a"), self._Unit(1, "a"), self._Unit(2, "b")]
        schedule = FaultSchedule.scripted(
            Outage(start_s=1.0, duration_s=2.0, member="a")
        )
        compiled = schedule.compile(units)
        assert set(compiled.downtime) == {0, 1}
        assert compiled.downtime[0] == compiled.downtime[1] == ((1.0, 3.0),)

    def test_unknown_targets_are_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.scripted(
                Outage(start_s=0.0, duration_s=1.0, unit_id=9)
            ).compile([self._Unit(0)])
        with pytest.raises(ConfigurationError):
            FaultSchedule.scripted(
                Outage(start_s=0.0, duration_s=1.0, member="nope")
            ).compile([self._Unit(0)])

    def test_outage_needs_exactly_one_target(self):
        with pytest.raises(ConfigurationError):
            Outage(start_s=0.0, duration_s=1.0)
        with pytest.raises(ConfigurationError):
            Outage(start_s=0.0, duration_s=1.0, unit_id=0, member="a")

    def test_poisson_compilation_is_seed_deterministic(self):
        units = [self._Unit(0), self._Unit(1)]
        one = FaultSchedule.poisson(10.0, 5.0, 100.0, seed=3).compile(units)
        two = FaultSchedule.poisson(10.0, 5.0, 100.0, seed=3).compile(units)
        other = FaultSchedule.poisson(10.0, 5.0, 100.0, seed=4).compile(units)
        assert one == two
        assert one != other

    def test_failstop_process_stops_after_first_failure(self):
        windows = FaultProcess(
            mtbf_s=5.0, mttr_s=None, horizon_s=1000.0, seed=0
        ).draw_windows(0)
        assert len(windows) == 1
        assert windows[0][1] == math.inf

    def test_merge_windows_handles_touching_and_infinite(self):
        assert merge_windows([(0.0, 1.0), (1.0, 2.0), (5.0, math.inf)]) == [
            (0.0, 2.0),
            (5.0, math.inf),
        ]


# ----------------------------------------------------------------- outcomes
class TestFailuresAndRetries:
    def test_failstop_kills_inflight_request_without_retry(self):
        # One unit, one request of 10 s, crash at t=5: no policy => failed.
        server = make_server(
            latency_s=10.0,
            faults=FaultSchedule.scripted(Outage(start_s=5.0, unit_id=0)),
        )
        report = server.serve([request(0, 0.0)])
        assert len(report.completed) == 0
        assert report.num_failed == 1
        failure = report.failed[0]
        assert failure.reason == FAIL_UNIT
        assert failure.failed_time_s == pytest.approx(5.0)
        assert failure.attempts == 1
        assert report.goodput_fraction == 0.0
        assert report.failure_rate == 1.0

    def test_transient_outage_retries_and_completes(self):
        # Crash at 5, repair at 8; backoff 1 s after the kill => restart at
        # max(6, 8) = 8, finish at 18, exactly one retry.
        server = make_server(
            latency_s=10.0,
            faults=FaultSchedule.scripted(
                Outage(start_s=5.0, duration_s=3.0, unit_id=0)
            ),
            retry_policy=RetryPolicy(max_attempts=3, backoff_s=1.0),
        )
        report = server.serve([request(0, 0.0)])
        assert report.num_failed == 0
        assert len(report.completed) == 1
        completed = report.completed[0]
        assert completed.attempts == 2
        assert completed.start_time_s == pytest.approx(8.0)
        assert completed.finish_time_s == pytest.approx(18.0)
        assert report.num_retries == 1
        assert report.failover_delays_s == pytest.approx([3.0])
        assert report.mean_failover_delay_s == pytest.approx(3.0)

    def test_retries_exhausted_records_failure(self):
        # Every dispatch dies: 2 s outages every 1 s of uptime around a 10 s
        # request; max_attempts=2 => one retry then FAIL_RETRIES.
        server = make_server(
            latency_s=10.0,
            faults=FaultSchedule.scripted(
                Outage(start_s=1.0, duration_s=2.0, unit_id=0),
                Outage(start_s=4.0, duration_s=2.0, unit_id=0),
            ),
            retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.0),
        )
        report = server.serve([request(0, 0.0)])
        assert report.num_failed == 1
        assert report.failed[0].reason == FAIL_RETRIES
        assert report.failed[0].attempts == 2
        assert report.num_retries == 1

    def test_retry_budget_exhaustion(self):
        # Two requests killed at t=1 on two clusters, budget of 1 retry:
        # the first kill spends it, the second fails with FAIL_BUDGET.
        server = make_server(
            latency_s=10.0,
            num_clusters=2,
            faults=FaultSchedule.scripted(
                Outage(start_s=1.0, unit_id=0),
                Outage(start_s=1.0, unit_id=1),
            ),
            retry_policy=RetryPolicy(
                max_attempts=5, backoff_s=0.0, retry_budget=1
            ),
        )
        report = server.serve([request(0, 0.0), request(1, 0.0)])
        reasons = sorted(f.reason for f in report.failed)
        # Both eventually fail (no unit ever repairs): one burned the budget
        # first and died on its next kill, the other died immediately.
        assert FAIL_BUDGET in reasons
        assert report.num_retries == 1

    def test_non_retryable_request_fails_immediately(self):
        server = make_server(
            latency_s=10.0,
            faults=FaultSchedule.scripted(Outage(start_s=5.0, unit_id=0)),
            retry_policy=RetryPolicy(max_attempts=5),
        )
        report = server.serve([request(0, 0.0, retryable=False)])
        assert report.num_failed == 1
        assert report.failed[0].reason == FAIL_UNIT
        assert report.num_retries == 0

    def test_backoff_arithmetic(self):
        policy = RetryPolicy(backoff_s=0.5, backoff_multiplier=3.0)
        assert policy.delay_s(1) == pytest.approx(0.5)
        assert policy.delay_s(2) == pytest.approx(1.5)
        assert policy.delay_s(3) == pytest.approx(4.5)
        with pytest.raises(ConfigurationError):
            policy.delay_s(0)

    def test_dispatch_avoids_down_units(self):
        # Unit 0 is down for the whole trace: everything lands on unit 1.
        server = make_server(
            latency_s=1.0,
            num_clusters=2,
            faults=FaultSchedule.scripted(Outage(start_s=0.0, unit_id=0)),
        )
        report = server.serve([request(i, float(i)) for i in range(5)])
        assert len(report.completed) == 5
        assert {c.cluster_id for c in report.completed} == {1}

    def test_member_dropout_and_rejoin_in_a_fleet(self):
        # The "fast" member drops 2..4 s; arrivals in that window queue or
        # run on the slow member, and traffic returns after the rejoin.
        fleet = ApplianceFleet(
            [
                FleetMember("fast", FixedLatencyPlatform(0.1), num_clusters=2),
                FleetMember("slow", FixedLatencyPlatform(5.0), num_clusters=1),
            ],
            faults=FaultSchedule.scripted(
                Outage(start_s=2.0, duration_s=2.0, member="fast")
            ),
            retry_policy=RetryPolicy(max_attempts=3, backoff_s=0.0),
        )
        trace = [request(i, 0.5 * i) for i in range(12)]
        report = fleet.serve(trace)
        assert report.num_failed == 0
        assert len(report.completed) == 12
        down_units = {
            uid for uid, windows in report.unit_downtime.items() if windows
        }
        assert down_units == {0, 1}  # both "fast" clusters, together
        for completed in report.completed:
            if completed.appliance == "fast":
                assert not 2.0 < completed.start_time_s < 4.0


# ------------------------------------------------------------- backoff cap
class TestBackoffCap:
    def test_cap_clamps_the_exponential(self):
        policy = RetryPolicy(
            backoff_s=0.5, backoff_multiplier=3.0, max_backoff_s=2.0
        )
        assert policy.delay_s(1) == pytest.approx(0.5)
        assert policy.delay_s(2) == pytest.approx(1.5)
        assert policy.delay_s(3) == 2.0
        assert policy.delay_s(50) == 2.0

    def test_hundred_failure_campaign_stays_finite_and_bounded(self):
        # The regression: before the cap, a long campaign of kills pushed
        # the retry instant astronomically past the trace (the 100th delay
        # of a doubling backoff is ~6e28 seconds).
        policy = RetryPolicy(
            max_attempts=101,
            backoff_s=0.1,
            backoff_multiplier=2.0,
            max_backoff_s=30.0,
        )
        delays = [policy.delay_s(failures) for failures in range(1, 101)]
        assert all(math.isfinite(d) and 0.0 < d <= 30.0 for d in delays)
        assert delays == sorted(delays)  # clamping keeps monotonicity
        uncapped = RetryPolicy(
            max_attempts=101, backoff_s=0.1, backoff_multiplier=2.0
        )
        assert uncapped.delay_s(100) > 1e28

    def test_cap_tames_an_overflowing_exponent(self):
        # Exponents large enough to overflow the float product still clamp
        # to the finite cap; uncapped they saturate to infinity instead of
        # raising mid-simulation.
        policy = RetryPolicy(
            backoff_s=0.1, backoff_multiplier=10.0, max_backoff_s=60.0
        )
        assert policy.delay_s(5000) == 60.0
        uncapped = RetryPolicy(backoff_s=0.1, backoff_multiplier=10.0)
        assert math.isinf(uncapped.delay_s(5000))

    def test_default_is_uncapped_and_unchanged(self):
        assert RetryPolicy().max_backoff_s is None
        policy = RetryPolicy(backoff_s=0.5, backoff_multiplier=3.0)
        assert policy.delay_s(3) == pytest.approx(4.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_backoff_s=-1.0)

    def test_capped_retries_recover_sooner_end_to_end(self):
        # Four kills in a row: the uncapped 8x backoff parks the request
        # ~64 s out after the third kill, the capped policy retries within
        # 2 s of every kill and finishes two outages earlier.
        def run(max_backoff_s):
            server = make_server(
                latency_s=10.0,
                faults=FaultSchedule.scripted(
                    Outage(start_s=1.0, duration_s=1.0, unit_id=0),
                    Outage(start_s=11.0, duration_s=1.0, unit_id=0),
                    Outage(start_s=21.0, duration_s=1.0, unit_id=0),
                    Outage(start_s=31.0, duration_s=1.0, unit_id=0),
                ),
                retry_policy=RetryPolicy(
                    max_attempts=10,
                    backoff_s=1.0,
                    backoff_multiplier=8.0,
                    max_backoff_s=max_backoff_s,
                ),
            )
            report = server.serve([request(0, 0.0)])
            assert len(report.completed) == 1
            return report.completed[0]

        capped, uncapped = run(2.0), run(None)
        assert capped.finish_time_s < uncapped.finish_time_s
        assert capped.attempts >= uncapped.attempts


# ----------------------------------------------------------- degraded mode
class TestDegradedMode:
    def test_shedding_drops_low_priority_while_down(self):
        # Unit down 1..10 on a 1-unit server: priority-2 arrivals in the
        # window are shed, priority-0 waits and completes after repair.
        server = make_server(
            latency_s=1.0,
            faults=FaultSchedule.scripted(
                Outage(start_s=1.0, duration_s=9.0, unit_id=0)
            ),
            degraded_mode=DegradedModePolicy(shed_priority_above=1),
        )
        trace = [
            request(0, 2.0, priority=2),
            request(1, 3.0, priority=0),
        ]
        report = server.serve(trace)
        shed = [a for a in report.abandoned if a.reason == ABANDON_SHED]
        assert [a.request.request_id for a in shed] == [0]
        assert shed[0].abandoned_time_s == pytest.approx(2.0)
        assert [c.request.request_id for c in report.completed] == [1]
        assert report.completed[0].start_time_s == pytest.approx(10.0)

    def test_shedding_by_service_class(self):
        server = make_server(
            latency_s=1.0,
            faults=FaultSchedule.scripted(
                Outage(start_s=0.0, duration_s=5.0, unit_id=0)
            ),
            degraded_mode=DegradedModePolicy(shed_classes=("batchy",)),
        )
        trace = [
            request(0, 1.0, service_class="batchy"),
            request(1, 1.0, service_class="chat"),
        ]
        report = server.serve(trace)
        assert [a.reason for a in report.abandoned] == [ABANDON_SHED]
        assert report.abandoned[0].request.service_class == "batchy"
        assert [c.request.request_id for c in report.completed] == [1]

    def test_no_shedding_at_full_capacity(self):
        server = make_server(
            latency_s=1.0,
            degraded_mode=DegradedModePolicy(shed_priority_above=0),
        )
        report = server.serve([request(0, 0.0, priority=5)])
        assert len(report.completed) == 1
        assert not report.abandoned

    def test_policy_requires_a_shed_criterion(self):
        with pytest.raises(ConfigurationError):
            DegradedModePolicy()


# -------------------------------------------------------- link degradation
class TestLinkDegradation:
    def test_degradation_scales_service_time_in_window(self):
        # 1 s service; a 3x degradation over 10..20 makes a request priced
        # inside the window take 3 s.
        server = make_server(
            latency_s=1.0,
            faults=FaultSchedule.scripted(
                Degradation(start_s=10.0, duration_s=10.0, slowdown=3.0, unit_id=0)
            ),
        )
        report = server.serve([request(0, 0.0), request(1, 12.0)])
        by_id = {c.request.request_id: c for c in report.completed}
        assert by_id[0].finish_time_s - by_id[0].start_time_s == pytest.approx(1.0)
        assert by_id[1].finish_time_s - by_id[1].start_time_s == pytest.approx(3.0)
        # Degradation is not downtime: availability stays perfect.
        assert report.availability == 1.0
        assert report.unit_downtime == {}

    def test_overlapping_degradations_stack(self):
        server = make_server(
            latency_s=1.0,
            faults=FaultSchedule.scripted(
                Degradation(start_s=0.0, duration_s=50.0, slowdown=2.0, unit_id=0),
                Degradation(start_s=0.0, duration_s=50.0, slowdown=3.0, unit_id=0),
            ),
        )
        report = server.serve([request(0, 1.0)])
        completed = report.completed[0]
        assert completed.finish_time_s - completed.start_time_s == pytest.approx(6.0)


# ----------------------------------------------------------------- edges
class TestFaultEdgeCases:
    def test_empty_trace_with_faults(self):
        server = make_server(
            faults=FaultSchedule.scripted(
                Outage(start_s=1.0, duration_s=5.0, unit_id=0)
            )
        )
        report = server.serve([])
        assert report.num_offered == 0
        assert report.goodput_fraction == 1.0
        assert report.availability == 1.0  # no busy window to be down in
        assert report.unit_downtime == {0: ((1.0, 6.0),)}

    def test_all_requests_failed(self):
        # Fail-stop before anything can finish: zero completions, so the
        # busy window is empty and availability degenerates to 1.0 while
        # goodput drops to 0.
        server = make_server(
            latency_s=100.0,
            faults=FaultSchedule.scripted(Outage(start_s=1.0, unit_id=0)),
        )
        report = server.serve([request(i, 0.0) for i in range(3)])
        assert len(report.completed) == 0
        assert report.num_failed + report.num_abandoned == 3
        assert report.num_failed >= 1
        assert report.makespan_s == 0.0
        assert report.availability == 1.0
        assert report.goodput_fraction == 0.0
        assert report.mean_response_time_s == 0.0

    def test_fault_mid_flight_continuous_batch_repriced(self):
        # Two decode streams in flight under repricing when the unit dies:
        # both are killed, retried after repair, and complete exactly once.
        server = ApplianceServer(
            BatchableTokenPlatform(
                fixed_ms_per_token=500.0, marginal_ms_per_token=100.0
            ),
            num_clusters=1,
            platform_name="batchy",
            batch_policy=ContinuousBatching(4, reprice=True),
            max_batch_size=4,
            faults=FaultSchedule.scripted(
                Outage(start_s=2.0, duration_s=3.0, unit_id=0)
            ),
            retry_policy=RetryPolicy(max_attempts=3, backoff_s=0.0),
        )
        trace = [request(0, 0.0, output_tokens=10), request(1, 0.5, output_tokens=10)]
        report = server.serve(trace)
        assert report.num_failed == 0
        assert sorted(c.request.request_id for c in report.completed) == [0, 1]
        assert all(c.attempts == 2 for c in report.completed)
        assert report.num_retries == 2
        for completed in report.completed:
            assert completed.start_time_s >= 5.0  # nothing completes from downtime
        # Killed-stream energy for the pre-crash segment stays accounted.
        assert report.total_energy_joules > 0.0

    def test_seeded_campaign_reproduces_identical_numbers(self):
        def run():
            server = make_server(
                latency_s=2.0,
                num_clusters=2,
                faults=FaultSchedule.poisson(8.0, 4.0, 60.0, seed=11),
                retry_policy=RetryPolicy(max_attempts=3, backoff_s=0.1),
            )
            return server.serve([request(i, 0.7 * i) for i in range(40)])

        first, second = run(), run()
        assert first == second
        assert first.availability == second.availability
        assert first.goodput_fraction == second.goodput_fraction


# -------------------------------------------------- capability unit counts
class TestUnitCountDefaults:
    def test_dfx_4u_preset_has_two_units(self):
        backend = make_backend("dfx-4u")
        assert backend.capabilities().num_units == 2

    def test_server_defaults_num_clusters_from_capabilities(self):
        server = ApplianceServer(make_backend("dfx-4u", config="test-tiny"))
        assert server.num_clusters == 2
        report = server.serve([request(0, 0.0)])
        assert report.num_clusters == 2

    def test_explicit_num_clusters_still_wins(self):
        server = ApplianceServer(
            make_backend("dfx-4u", config="test-tiny"), num_clusters=3
        )
        assert server.num_clusters == 3

    def test_fleet_member_defaults_from_capabilities(self):
        fleet = ApplianceFleet(
            [
                FleetMember("4u", make_backend("dfx-4u", config="test-tiny")),
                FleetMember("solo", FixedLatencyPlatform(1.0)),
            ]
        )
        assert fleet.clusters_for("4u") == 2
        assert fleet.clusters_for("solo") == 1
        assert fleet.num_clusters == 3


# ------------------------------------------------------------- trace replay
class TestReplayRetryable:
    def test_replay_parses_retryable_column(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "request_id,arrival_time_s,input_tokens,output_tokens,retryable\n"
            "0,0.0,4,8,false\n"
            "1,1.0,4,8,true\n"
            "2,2.0,4,8,\n"
        )
        trace = replay_trace(path)
        assert [r.retryable for r in trace] == [False, True, True]

    def test_replay_rejects_bad_retryable(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "request_id,arrival_time_s,input_tokens,output_tokens,retryable\n"
            "0,0.0,4,8,maybe\n"
        )
        with pytest.raises(Exception):
            replay_trace(path)
