"""JSON round-trips for DSE candidates, vectors, evaluations, and fronts."""

from __future__ import annotations

import math

import pytest

from repro.analysis import export
from repro.dse import (
    Dimension,
    EvaluatedCandidate,
    Objective,
    ObjectiveVector,
    SearchSpace,
    factorial_search,
)
from repro.errors import ConfigurationError

OBJECTIVES = (
    Objective("latency_s", "min", "s"),
    Objective("tokens_per_s", "max", "tok/s"),
)


def make_space() -> SearchSpace:
    return SearchSpace([
        Dimension("backend", ["dfx", "gpu"]),
        Dimension("tile", {"64x16": (64, 16), "128x8": (128, 8)}),
    ])


class ToyEvaluator:
    objectives = OBJECTIVES

    def evaluate(self, candidate):
        bias = 1.0 if candidate["backend"] == "dfx" else 2.0
        d, _ = candidate["tile"]
        return ObjectiveVector(
            objectives=self.objectives, values=(bias, float(d))
        )


class TestCandidateRoundTrip:
    def test_round_trip_restores_values(self):
        space = make_space()
        original = space.candidate((1, 0))
        payload = export.dse_candidate_to_dict(original)
        rebuilt = export.dse_candidate_from_dict(payload, space)
        assert rebuilt == original
        assert rebuilt["tile"] == (64, 16)  # values rebuilt from labels

    def test_unknown_schema_rejected(self):
        payload = export.dse_candidate_to_dict(make_space().candidate((0, 0)))
        payload["schema_version"] = 2
        with pytest.raises(ConfigurationError, match="schema_version"):
            export.dse_candidate_from_dict(payload, make_space())

    def test_key_mismatch_detected(self):
        space = make_space()
        payload = export.dse_candidate_to_dict(space.candidate((0, 0)))
        payload["key"] = "backend=gpu|tile=64x16"
        with pytest.raises(ConfigurationError, match="does not match"):
            export.dse_candidate_from_dict(payload, space)


class TestVectorRoundTrip:
    def test_round_trip_preserves_senses_and_units(self):
        vector = ObjectiveVector(objectives=OBJECTIVES, values=(1.5, 2090.87))
        rebuilt = export.dse_vector_from_dict(export.dse_vector_to_dict(vector))
        assert rebuilt == vector
        assert rebuilt.objectives[1].sense == "max"
        assert rebuilt.objectives[1].unit == "tok/s"

    def test_unknown_schema_rejected(self):
        payload = export.dse_vector_to_dict(
            ObjectiveVector(objectives=OBJECTIVES, values=(1.0, 2.0))
        )
        del payload["schema_version"]
        with pytest.raises(ConfigurationError, match="schema_version"):
            export.dse_vector_from_dict(payload)


class TestEvaluationRoundTrip:
    def test_feasible_evaluation(self):
        space = make_space()
        entry = EvaluatedCandidate(
            candidate=space.candidate((0, 1)),
            vector=ObjectiveVector(objectives=OBJECTIVES, values=(0.5, 128.0)),
        )
        payload = export.dse_evaluation_to_dict(entry)
        assert export.dse_evaluation_from_dict(payload, space) == entry

    def test_infeasible_evaluation(self):
        space = make_space()
        entry = EvaluatedCandidate(
            candidate=space.candidate((1, 1)),
            vector=None,
            infeasible_reason="gpu cannot mount this tile",
        )
        payload = export.dse_evaluation_to_dict(entry)
        rebuilt = export.dse_evaluation_from_dict(payload, space)
        assert rebuilt == entry
        assert not rebuilt.feasible


class TestFrontRoundTrip:
    def test_front_round_trips_with_infinite_crowding(self):
        space = make_space()
        result = factorial_search(space, ToyEvaluator())
        front = result.front
        assert any(
            math.isinf(member.crowding_distance) for member in front.members
        )
        payload = export.dse_front_to_dict(front)
        rebuilt = export.dse_front_from_dict(payload, space)
        assert rebuilt == front

    def test_front_payload_is_json_serializable(self, tmp_path):
        space = make_space()
        front = factorial_search(space, ToyEvaluator()).front
        path = export.write_json(export.dse_front_to_dict(front), tmp_path / "f.json")
        rebuilt = export.dse_front_from_dict(export.read_json(path), space)
        assert rebuilt == front

    def test_unknown_schema_rejected(self):
        space = make_space()
        payload = export.dse_front_to_dict(
            factorial_search(space, ToyEvaluator()).front
        )
        payload["schema_version"] = "v2"
        with pytest.raises(ConfigurationError, match="schema_version"):
            export.dse_front_from_dict(payload, space)
