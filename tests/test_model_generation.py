"""Tests for the two-stage text-generation driver."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.model.config import GPT2_TEST_TINY
from repro.model.generation import TextGenerator
from repro.model.tokenizer import SyntheticTokenizer


@pytest.fixture(scope="module")
def generator(request):
    tiny_model = request.getfixturevalue("tiny_model")
    return TextGenerator(tiny_model, SyntheticTokenizer(vocab_size=GPT2_TEST_TINY.vocab_size))


class TestTokenGeneration:
    def test_produces_requested_number_of_tokens(self, generator):
        result = generator.generate_tokens([5, 9, 12], max_new_tokens=6)
        assert len(result.output_token_ids) == 6
        assert result.total_tokens == 9

    def test_kv_cache_length_tracks_summarization_and_generation(self, generator):
        result = generator.generate_tokens([5, 9, 12, 3], max_new_tokens=4)
        # Summarization caches the 4 prompt tokens; each generation iteration
        # (3 of them) caches one more; the final token is never fed back.
        assert result.kv_cache_length == 4 + 3

    def test_greedy_generation_is_deterministic(self, generator):
        first = generator.generate_tokens([7, 8, 9], max_new_tokens=5)
        second = generator.generate_tokens([7, 8, 9], max_new_tokens=5)
        assert first.output_token_ids == second.output_token_ids

    def test_greedy_matches_manual_decode_loop(self, generator, tiny_model):
        prompt = [11, 22, 33]
        result = generator.generate_tokens(prompt, max_new_tokens=3)
        cache = tiny_model.new_cache()
        out = tiny_model.forward(np.asarray(prompt), cache)
        expected = [out.next_token_id]
        for _ in range(2):
            out = tiny_model.forward(np.asarray([expected[-1]]), cache)
            expected.append(out.next_token_id)
        assert result.output_token_ids == expected

    def test_zero_new_tokens_runs_only_summarization(self, generator):
        result = generator.generate_tokens([4, 5], max_new_tokens=0)
        assert result.output_token_ids == []
        assert result.summarization_logits is not None

    def test_sampled_generation_respects_seed(self, tiny_model):
        first = TextGenerator(tiny_model, seed=3).generate_tokens(
            [4, 5, 6], max_new_tokens=5, temperature=1.0
        )
        second = TextGenerator(tiny_model, seed=3).generate_tokens(
            [4, 5, 6], max_new_tokens=5, temperature=1.0
        )
        assert first.output_token_ids == second.output_token_ids


class TestValidation:
    def test_empty_prompt_rejected(self, generator):
        with pytest.raises(ExecutionError):
            generator.generate_tokens([], max_new_tokens=1)

    def test_context_overflow_rejected(self, generator):
        prompt = list(range(3, GPT2_TEST_TINY.n_positions))
        with pytest.raises(ExecutionError):
            generator.generate_tokens(prompt, max_new_tokens=10)

    def test_negative_temperature_rejected(self, generator):
        with pytest.raises(ExecutionError):
            generator.generate_tokens([1, 2], max_new_tokens=2, temperature=-0.5)


class TestTextInterface:
    def test_generate_text_round_trip(self, generator):
        text, result = generator.generate_text("hello my name is", max_new_tokens=4)
        assert isinstance(text, str)
        assert len(result.output_token_ids) == 4
        assert len(result.input_token_ids) == 4
