"""Tests for the two-stage text-generation driver."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.model.config import GPT2_TEST_TINY
from repro.model.generation import TextGenerator
from repro.model.tokenizer import SyntheticTokenizer


@pytest.fixture(scope="module")
def generator(request):
    tiny_model = request.getfixturevalue("tiny_model")
    return TextGenerator(tiny_model, SyntheticTokenizer(vocab_size=GPT2_TEST_TINY.vocab_size))


class TestTokenGeneration:
    def test_produces_requested_number_of_tokens(self, generator):
        result = generator.generate_tokens([5, 9, 12], max_new_tokens=6)
        assert len(result.output_token_ids) == 6
        assert result.total_tokens == 9

    def test_kv_cache_length_tracks_summarization_and_generation(self, generator):
        result = generator.generate_tokens([5, 9, 12, 3], max_new_tokens=4)
        # Summarization caches the 4 prompt tokens; each generation iteration
        # (3 of them) caches one more; the final token is never fed back.
        assert result.kv_cache_length == 4 + 3

    def test_greedy_generation_is_deterministic(self, generator):
        first = generator.generate_tokens([7, 8, 9], max_new_tokens=5)
        second = generator.generate_tokens([7, 8, 9], max_new_tokens=5)
        assert first.output_token_ids == second.output_token_ids

    def test_greedy_matches_manual_decode_loop(self, generator, tiny_model):
        prompt = [11, 22, 33]
        result = generator.generate_tokens(prompt, max_new_tokens=3)
        cache = tiny_model.new_cache()
        out = tiny_model.forward(np.asarray(prompt), cache)
        expected = [out.next_token_id]
        for _ in range(2):
            out = tiny_model.forward(np.asarray([expected[-1]]), cache)
            expected.append(out.next_token_id)
        assert result.output_token_ids == expected

    def test_zero_new_tokens_runs_only_summarization(self, generator):
        result = generator.generate_tokens([4, 5], max_new_tokens=0)
        assert result.output_token_ids == []
        assert result.summarization_logits is not None

    def test_sampled_generation_respects_seed(self, tiny_model):
        first = TextGenerator(tiny_model, seed=3).generate_tokens(
            [4, 5, 6], max_new_tokens=5, temperature=1.0
        )
        second = TextGenerator(tiny_model, seed=3).generate_tokens(
            [4, 5, 6], max_new_tokens=5, temperature=1.0
        )
        assert first.output_token_ids == second.output_token_ids


class TestValidation:
    def test_empty_prompt_rejected(self, generator):
        with pytest.raises(ExecutionError):
            generator.generate_tokens([], max_new_tokens=1)

    def test_context_overflow_rejected(self, generator):
        prompt = list(range(3, GPT2_TEST_TINY.n_positions))
        with pytest.raises(ExecutionError):
            generator.generate_tokens(prompt, max_new_tokens=10)

    def test_negative_temperature_rejected(self, generator):
        with pytest.raises(ExecutionError):
            generator.generate_tokens([1, 2], max_new_tokens=2, temperature=-0.5)


class TestTextInterface:
    def test_generate_text_round_trip(self, generator):
        text, result = generator.generate_text("hello my name is", max_new_tokens=4)
        assert isinstance(text, str)
        assert len(result.output_token_ids) == 4
        assert len(result.input_token_ids) == 4


class TestBatchedGeneration:
    """BatchedTextGenerator vs the sequential TextGenerator oracle."""

    PROMPTS = [[1, 2, 3], [4, 5], [6, 7, 8, 9], [10, 11], [3, 1, 4]]
    BUDGETS = [5, 3, 7, 1, 4]

    @pytest.fixture()
    def batched(self, tiny_model):
        from repro.model.generation import BatchedTextGenerator

        return BatchedTextGenerator(tiny_model, seed=11)

    def _oracle(self, tiny_model, index, prompt, budget, temperature=0.0):
        return TextGenerator(tiny_model, seed=11 + index).generate_tokens(
            prompt, budget, temperature=temperature
        )

    def test_ragged_batch_bit_identical_per_stream(self, batched, tiny_model):
        results = batched.generate_tokens_batch(self.PROMPTS, self.BUDGETS)
        for index, (prompt, budget, result) in enumerate(
            zip(self.PROMPTS, self.BUDGETS, results)
        ):
            oracle = self._oracle(tiny_model, index, prompt, budget)
            assert result.output_token_ids == oracle.output_token_ids
            assert result.kv_cache_length == oracle.kv_cache_length
            np.testing.assert_array_equal(
                result.summarization_logits, oracle.summarization_logits
            )

    def test_batch_of_one_matches_unbatched(self, batched, tiny_model):
        result = batched.generate_tokens_batch([[5, 9, 12]], 6)[0]
        oracle = self._oracle(tiny_model, 0, [5, 9, 12], 6)
        assert result.output_token_ids == oracle.output_token_ids

    def test_sampled_streams_use_independent_seeds(self, batched, tiny_model):
        results = batched.generate_tokens_batch(
            self.PROMPTS, self.BUDGETS, temperature=0.8
        )
        for index, (prompt, budget, result) in enumerate(
            zip(self.PROMPTS, self.BUDGETS, results)
        ):
            oracle = self._oracle(tiny_model, index, prompt, budget, temperature=0.8)
            assert result.output_token_ids == oracle.output_token_ids

    def test_slots_recycled_across_calls(self, batched):
        first = batched.generate_tokens_batch(self.PROMPTS, self.BUDGETS)
        slots_after_first = batched.cache.slots
        again = batched.generate_tokens_batch(self.PROMPTS, self.BUDGETS)
        assert batched.cache.slots == slots_after_first
        assert batched.cache.active_slots == 0
        assert [r.output_token_ids for r in again] == [
            r.output_token_ids for r in first
        ]

    def test_reset_cache_drops_arenas(self, batched):
        batched.generate_tokens_batch([[1, 2]], 2)
        assert batched.cache.slots > 0
        batched.reset_cache()
        assert batched.cache.slots == 0

    def test_zero_budget_stream_rides_along(self, batched, tiny_model):
        results = batched.generate_tokens_batch([[4, 5], [6, 7]], [0, 3])
        assert results[0].output_token_ids == []
        assert results[0].summarization_logits is not None
        oracle = self._oracle(tiny_model, 1, [6, 7], 3)
        assert results[1].output_token_ids == oracle.output_token_ids

    def test_validation_mirrors_sequential(self, batched):
        with pytest.raises(ExecutionError):
            batched.generate_tokens_batch([[]], 2)
        with pytest.raises(ExecutionError):
            batched.generate_tokens_batch([[1]], -1)
        with pytest.raises(ExecutionError):
            batched.generate_tokens_batch([[1], [2]], [1])
        with pytest.raises(ExecutionError):
            batched.generate_tokens_batch(
                [list(range(3, GPT2_TEST_TINY.n_positions))], 10
            )
        assert batched.generate_tokens_batch([], 4) == []

    def test_text_batch_interface(self, batched):
        pairs = batched.generate_text_batch(
            ["hello my name is", "the quick brown"], 3
        )
        assert len(pairs) == 2
        for text, result in pairs:
            assert isinstance(text, str)
            assert len(result.output_token_ids) == 3
