"""Tier-2 smoke tests for the hot-path benchmark script.

Runs ``scripts/bench_hotpath.py`` end-to-end on the tiny configuration with a
minimal workload (one 4-token measurement), and exercises the ``--check``
regression gate deterministically by checking against synthetic baselines:
an easily-cleared floor must pass, an impossible one must fail.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "bench_hotpath.py"


def _run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), "--config", "tiny", "--tokens", "4",
         "--repeats", "1", "--num-devices", "2", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=300,
    )


def _synthetic_baseline(
    path: Path,
    tokens_per_second: float,
    reference_tokens_per_second: float | None = None,
) -> None:
    rates = {
        "functional-sim": tokens_per_second,
        "reference-model": (
            reference_tokens_per_second
            if reference_tokens_per_second is not None
            else tokens_per_second
        ),
    }
    path.write_text(json.dumps({
        "schema": 1,
        "config": "tiny",
        "entries": [
            {"engine": engine, "new_tokens": 4, "seconds": 1.0,
             "tokens_per_second": rate}
            for engine, rate in rates.items()
        ],
    }))


def test_script_writes_valid_report(tmp_path):
    output = tmp_path / "bench.json"
    result = _run("--output", str(output))
    assert result.returncode == 0, result.stderr
    report = json.loads(output.read_text())
    assert report["schema"] == 1
    engines = {entry["engine"] for entry in report["entries"]}
    assert engines == {"functional-sim", "reference-model"}
    assert all(entry["tokens_per_second"] > 0 for entry in report["entries"])


def test_custom_engines_write_to_explicit_output(tmp_path):
    output = tmp_path / "bench_engines.json"
    result = _run("--engines", "dfx-sim", "--output", str(output))
    assert result.returncode == 0, result.stderr
    report = json.loads(output.read_text())
    assert {entry["engine"] for entry in report["entries"]} == {"dfx-sim"}


def test_custom_engines_refuse_to_overwrite_committed_baseline():
    # BENCH_hotpath.json is the committed gate baseline: a report missing
    # the default engines must never silently replace it.
    result = _run("--engines", "dfx-sim")
    assert result.returncode == 1
    assert "refusing to overwrite" in result.stdout
    # The committed file was not touched (still holds the default engines).
    committed = json.loads((REPO_ROOT / "BENCH_hotpath.json").read_text())
    engines = {entry["engine"] for entry in committed["entries"]}
    assert engines == {"functional-sim", "reference-model"}


def test_unknown_engine_rejected(tmp_path):
    result = _run("--engines", "npu", "--output", str(tmp_path / "x.json"))
    assert result.returncode != 0
    assert "unknown engine" in result.stdout + result.stderr


def test_check_passes_against_low_floor(tmp_path):
    baseline = tmp_path / "baseline.json"
    _synthetic_baseline(baseline, tokens_per_second=0.001)
    result = _run("--check", "--output", str(baseline))
    assert result.returncode == 0, result.stdout + result.stderr
    assert "perf check OK" in result.stdout


def test_check_fails_on_regression(tmp_path):
    baseline = tmp_path / "baseline.json"
    _synthetic_baseline(baseline, tokens_per_second=1e12)
    result = _run("--check", "--output", str(baseline))
    assert result.returncode == 1
    assert "PERF REGRESSION DETECTED" in result.stdout


def test_check_fails_without_baseline(tmp_path):
    result = _run("--check", "--output", str(tmp_path / "missing.json"))
    assert result.returncode == 1


def test_check_ratio_passes_against_easy_ratio(tmp_path):
    # Committed ratio ~0.0001: any real measurement clears it regardless of
    # how slow the host is (that is the point of the relative gate).
    baseline = tmp_path / "baseline.json"
    _synthetic_baseline(baseline, tokens_per_second=1.0,
                        reference_tokens_per_second=10000.0)
    result = _run("--check-ratio", "--output", str(baseline))
    assert result.returncode == 0, result.stdout + result.stderr
    assert "ratio check OK" in result.stdout


def test_check_ratio_fails_when_functional_falls_behind(tmp_path):
    # Committed ratio 10000: impossible to reach, so the gate must fail even
    # though the absolute floors in the same file are trivially cleared.
    baseline = tmp_path / "baseline.json"
    _synthetic_baseline(baseline, tokens_per_second=1.0,
                        reference_tokens_per_second=0.0001)
    result = _run("--check-ratio", "--output", str(baseline))
    assert result.returncode == 1
    assert "RELATIVE PERF REGRESSION DETECTED" in result.stdout


def test_check_and_check_ratio_combine(tmp_path):
    # Absolute floors pass (tiny committed tokens/sec) but the ratio gate
    # fails: the combined run must still exit non-zero.
    baseline = tmp_path / "baseline.json"
    _synthetic_baseline(baseline, tokens_per_second=0.001,
                        reference_tokens_per_second=1e-9)
    result = _run("--check", "--check-ratio", "--output", str(baseline))
    assert result.returncode == 1
    assert "perf check OK" in result.stdout
    assert "RELATIVE PERF REGRESSION DETECTED" in result.stdout


def test_check_ratio_fails_without_comparable_entries(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "schema": 1,
        "config": "tiny",
        "entries": [{"engine": "functional-sim", "new_tokens": 4,
                     "seconds": 1.0, "tokens_per_second": 1.0}],
    }))
    result = _run("--check-ratio", "--output", str(baseline))
    assert result.returncode == 1
    assert "no ratio was checked" in result.stdout


def test_committed_baseline_supports_the_ratio_gate():
    # The committed baseline must always carry both engines at shared
    # generation lengths, or the CI ratio gate silently loses coverage.
    report = json.loads((REPO_ROOT / "BENCH_hotpath.json").read_text())
    by_engine = {}
    for entry in report["entries"]:
        by_engine.setdefault(entry["engine"], set()).add(entry["new_tokens"])
    shared = by_engine["functional-sim"] & by_engine["reference-model"]
    assert shared, "no generation length is shared between the two engines"


def test_committed_baseline_is_well_formed():
    committed = REPO_ROOT / "BENCH_hotpath.json"
    report = json.loads(committed.read_text())
    assert report["schema"] == 1
    functional_64 = next(
        entry for entry in report["entries"]
        if entry["engine"] == "functional-sim" and entry["new_tokens"] == 64
    )
    # The PR that introduced the fast path measured >=3x over the
    # pre-optimization engine; the committed baseline records it.
    assert functional_64["speedup"] >= 3.0


# --------------------------------------------------------------------- batched
def _run_batched(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), "--config", "tiny", "--tokens", "4",
         "--repeats", "1", "--num-devices", "2", "--batch", "1", "2", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=300,
    )


def _synthetic_batched_baseline(path: Path, aggregates: dict[int, float],
                                scalings: dict[int, float] | None = None) -> None:
    entries = []
    for batch, rate in aggregates.items():
        entry = {"batch": batch, "new_tokens": 4, "seconds": 1.0,
                 "aggregate_tokens_per_second": rate}
        if scalings and batch in scalings:
            entry["scaling_vs_single"] = scalings[batch]
        entries.append(entry)
    path.write_text(json.dumps({
        "schema": 1, "config": "tiny", "mode": "batched", "entries": entries,
    }))


def test_batched_mode_writes_valid_report(tmp_path):
    output = tmp_path / "batched.json"
    result = _run_batched("--output", str(output))
    assert result.returncode == 0, result.stderr
    report = json.loads(output.read_text())
    assert report["mode"] == "batched"
    by_batch = {entry["batch"]: entry for entry in report["entries"]}
    assert set(by_batch) == {1, 2}
    assert all(e["aggregate_tokens_per_second"] > 0 for e in by_batch.values())
    assert by_batch[1]["scaling_vs_single"] == 1.0
    assert by_batch[2]["scaling_vs_single"] > 0


def test_batched_check_passes_against_low_floor(tmp_path):
    baseline = tmp_path / "batched.json"
    _synthetic_batched_baseline(baseline, {1: 0.001, 2: 0.001},
                                scalings={1: 1.0, 2: 0.0001})
    result = _run_batched("--check", "--check-ratio", "--output", str(baseline))
    assert result.returncode == 0, result.stdout + result.stderr
    assert "batched perf check OK" in result.stdout


def test_batched_check_fails_on_absolute_regression(tmp_path):
    baseline = tmp_path / "batched.json"
    _synthetic_batched_baseline(baseline, {1: 1e12, 2: 1e12})
    result = _run_batched("--check", "--output", str(baseline))
    assert result.returncode == 1
    assert "BATCHED PERF REGRESSION DETECTED" in result.stdout


def test_batched_check_fails_on_scaling_regression(tmp_path):
    # Absolute floors trivially cleared, but an impossible committed
    # batched/single scaling ratio must still fail the gate.
    baseline = tmp_path / "batched.json"
    _synthetic_batched_baseline(baseline, {1: 0.001, 2: 0.001},
                                scalings={1: 1.0, 2: 1e6})
    result = _run_batched("--check", "--check-ratio", "--output", str(baseline))
    assert result.returncode == 1
    assert "scaling" in result.stdout
    assert "BATCHED PERF REGRESSION DETECTED" in result.stdout


def test_batched_check_fails_without_baseline(tmp_path):
    result = _run_batched("--check", "--output", str(tmp_path / "missing.json"))
    assert result.returncode == 1


def test_committed_batched_baseline_is_well_formed():
    # The committed batched baseline must record the batching win the PR
    # claims: batch-8 aggregate throughput at least 2x the committed
    # single-stream functional-sim rate at the same generation length.
    report = json.loads((REPO_ROOT / "BENCH_hotpath_batched.json").read_text())
    assert report["schema"] == 1
    assert report["mode"] == "batched"
    by_batch = {entry["batch"]: entry for entry in report["entries"]}
    assert {1, 2, 4, 8} <= set(by_batch)
    single = json.loads((REPO_ROOT / "BENCH_hotpath.json").read_text())
    single_rate = next(
        entry["tokens_per_second"] for entry in single["entries"]
        if entry["engine"] == "functional-sim"
        and entry["new_tokens"] == by_batch[8]["new_tokens"]
    )
    assert by_batch[8]["aggregate_tokens_per_second"] >= 2.0 * single_rate
    assert by_batch[8]["scaling_vs_single"] >= 2.0
