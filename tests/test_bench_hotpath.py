"""Tier-2 smoke tests for the hot-path benchmark script.

Runs ``scripts/bench_hotpath.py`` end-to-end on the tiny configuration with a
minimal workload (one 4-token measurement), and exercises the ``--check``
regression gate deterministically by checking against synthetic baselines:
an easily-cleared floor must pass, an impossible one must fail.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "bench_hotpath.py"


def _run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), "--config", "tiny", "--tokens", "4",
         "--repeats", "1", "--num-devices", "2", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=300,
    )


def _synthetic_baseline(path: Path, tokens_per_second: float) -> None:
    path.write_text(json.dumps({
        "schema": 1,
        "config": "tiny",
        "entries": [
            {"engine": engine, "new_tokens": 4, "seconds": 1.0,
             "tokens_per_second": tokens_per_second}
            for engine in ("functional-sim", "reference-model")
        ],
    }))


def test_script_writes_valid_report(tmp_path):
    output = tmp_path / "bench.json"
    result = _run("--output", str(output))
    assert result.returncode == 0, result.stderr
    report = json.loads(output.read_text())
    assert report["schema"] == 1
    engines = {entry["engine"] for entry in report["entries"]}
    assert engines == {"functional-sim", "reference-model"}
    assert all(entry["tokens_per_second"] > 0 for entry in report["entries"])


def test_check_passes_against_low_floor(tmp_path):
    baseline = tmp_path / "baseline.json"
    _synthetic_baseline(baseline, tokens_per_second=0.001)
    result = _run("--check", "--output", str(baseline))
    assert result.returncode == 0, result.stdout + result.stderr
    assert "perf check OK" in result.stdout


def test_check_fails_on_regression(tmp_path):
    baseline = tmp_path / "baseline.json"
    _synthetic_baseline(baseline, tokens_per_second=1e12)
    result = _run("--check", "--output", str(baseline))
    assert result.returncode == 1
    assert "PERF REGRESSION DETECTED" in result.stdout


def test_check_fails_without_baseline(tmp_path):
    result = _run("--check", "--output", str(tmp_path / "missing.json"))
    assert result.returncode == 1


def test_committed_baseline_is_well_formed():
    committed = REPO_ROOT / "BENCH_hotpath.json"
    report = json.loads(committed.read_text())
    assert report["schema"] == 1
    functional_64 = next(
        entry for entry in report["entries"]
        if entry["engine"] == "functional-sim" and entry["new_tokens"] == 64
    )
    # The PR that introduced the fast path measured >=3x over the
    # pre-optimization engine; the committed baseline records it.
    assert functional_64["speedup"] >= 3.0
