"""Tests for the discrete-event serving simulator and its scheduling policies."""

import heapq

import pytest

from repro.core.appliance import DFXAppliance
from repro.errors import ConfigurationError
from repro.model.config import GPT2_345M
from repro.serving import (
    ABANDON_INFEASIBLE,
    ABANDON_TIMEOUT,
    ApplianceServer,
    LatencyOracle,
    SCHEDULERS,
    ServerUnit,
    ServiceRequest,
    constant_trace,
    make_scheduler,
    merge_traces,
    poisson_trace,
    simulate,
    with_service_levels,
)
from repro.serving.schedulers import FIFOScheduler, SchedulingPolicy
from repro.workloads import Workload
from serving_doubles import (
    FixedLatencyPlatform as _FixedLatencyPlatform,
    TokenProportionalPlatform as _TokenProportionalPlatform,
)


def _legacy_fifo_serve(platform, num_clusters, trace):
    """The original single-loop ``ApplianceServer.serve()`` (pre-simulator).

    Kept verbatim as the equivalence oracle for the event-driven FIFO path.
    Returns (completions, total_energy, last_finish) where completions maps
    request_id -> (start, finish, cluster_id).
    """
    oracle = LatencyOracle(platform)
    ordered = sorted(trace, key=lambda request: request.arrival_time_s)
    free_at = [(0.0, cluster) for cluster in range(num_clusters)]
    heapq.heapify(free_at)
    completions = {}
    total_energy = 0.0
    last_finish = 0.0
    for request in ordered:
        cluster_free_time, cluster_id = heapq.heappop(free_at)
        result = oracle.result_for(request.workload)
        start = max(request.arrival_time_s, cluster_free_time)
        finish = start + result.latency_s
        heapq.heappush(free_at, (finish, cluster_id))
        completions[request.request_id] = (start, finish, cluster_id)
        total_energy += result.energy_joules
        last_finish = max(last_finish, finish)
    return completions, total_energy, last_finish


class TestFIFOEquivalence:
    """The event-driven simulator under FIFO must reproduce the legacy loop."""

    @pytest.mark.parametrize("num_clusters", [1, 2, 3])
    def test_exact_equivalence_on_poisson_trace(self, num_clusters):
        platform = _TokenProportionalPlatform(0.4)
        trace = poisson_trace(1.5, 60.0, seed=9)
        expected, expected_energy, last_finish = _legacy_fifo_serve(
            platform, num_clusters, trace
        )
        report = ApplianceServer(platform, num_clusters, "fixed").serve(trace)
        assert report.num_requests == len(trace)
        for completed in report.completed:
            start, finish, cluster = expected[completed.request.request_id]
            assert completed.start_time_s == pytest.approx(start, abs=1e-12)
            assert completed.finish_time_s == pytest.approx(finish, abs=1e-12)
            assert completed.cluster_id == cluster
        assert report.total_energy_joules == pytest.approx(expected_energy)
        first_arrival = min(r.arrival_time_s for r in trace)
        assert report.makespan_s == pytest.approx(last_finish - first_arrival)

    def test_exact_equivalence_on_real_appliance(self):
        platform = DFXAppliance(GPT2_345M, num_devices=1)
        trace = poisson_trace(0.8, 30.0, seed=4)
        expected, expected_energy, _ = _legacy_fifo_serve(platform, 2, trace)
        report = ApplianceServer(platform, 2, "dfx").serve(trace)
        for completed in report.completed:
            start, finish, cluster = expected[completed.request.request_id]
            assert completed.start_time_s == pytest.approx(start, abs=1e-9)
            assert completed.finish_time_s == pytest.approx(finish, abs=1e-9)
            assert completed.cluster_id == cluster
        assert report.total_energy_joules == pytest.approx(expected_energy)

    def test_fifo_completions_recorded_in_arrival_order(self):
        report = ApplianceServer(_FixedLatencyPlatform(1.0), 2).serve(
            poisson_trace(2.0, 30.0, seed=1)
        )
        ids = [c.request.request_id for c in report.completed]
        assert ids == sorted(ids)


class TestSchedulerInvariants:
    def test_fifo_preserves_arrival_order_per_cluster(self):
        report = ApplianceServer(_FixedLatencyPlatform(1.0), 2, scheduler="fifo").serve(
            poisson_trace(2.5, 40.0, seed=3)
        )
        for cluster in range(report.num_clusters):
            arrivals = [
                c.request.arrival_time_s
                for c in report.completed
                if c.cluster_id == cluster
            ]
            assert arrivals == sorted(arrivals)

    def test_sjf_never_increases_mean_response_time_on_backlogged_trace(self):
        # One long job in service, a second long job queued, then a burst of
        # short jobs: FIFO makes the shorts wait behind the long job, SJF
        # serves them first.
        platform = _TokenProportionalPlatform(0.1)
        long_job, short_job = Workload(1, 100), Workload(1, 5)
        trace = [ServiceRequest(0, 0.0, long_job), ServiceRequest(1, 0.1, long_job)]
        trace += [
            ServiceRequest(2 + i, 0.2 + 0.01 * i, short_job) for i in range(5)
        ]
        fifo = ApplianceServer(platform, 1, scheduler="fifo").serve(trace)
        sjf = ApplianceServer(platform, 1, scheduler="sjf").serve(trace)
        assert sjf.num_requests == fifo.num_requests == len(trace)
        assert sjf.mean_response_time_s < fifo.mean_response_time_s
        # Same total work, so the busy window is identical.
        assert sjf.makespan_s == pytest.approx(fifo.makespan_s)

    def test_priority_classes_jump_the_queue(self):
        platform = _FixedLatencyPlatform(1.0)
        trace = [
            ServiceRequest(0, 0.0, Workload(1, 1), priority=1),
            ServiceRequest(1, 0.1, Workload(1, 1), priority=1),
            ServiceRequest(2, 0.2, Workload(1, 1), priority=0),
        ]
        report = ApplianceServer(platform, 1, scheduler="priority").serve(trace)
        starts = {c.request.request_id: c.start_time_s for c in report.completed}
        # The urgent request (id 2) passes the earlier-arrived id 1.
        assert starts[2] == pytest.approx(1.0)
        assert starts[1] == pytest.approx(2.0)

    def test_deadline_scheduler_drops_exactly_the_infeasible_requests(self):
        platform = _FixedLatencyPlatform(1.0)
        trace = [
            ServiceRequest(0, 0.0, Workload(1, 1), slo_s=3.0),
            # Queued behind id 0; at t=1 its deadline (t=1.05) can no longer
            # be met (1 + 1s service > 1.05), so it must be dropped.
            ServiceRequest(1, 0.0, Workload(1, 1), slo_s=1.05),
            ServiceRequest(2, 0.5, Workload(1, 1), slo_s=10.0),
            ServiceRequest(3, 0.6, Workload(1, 1)),  # no SLO: deadline = inf
        ]
        report = ApplianceServer(platform, 1, scheduler="deadline").serve(trace)
        assert [a.request.request_id for a in report.abandoned] == [1]
        assert report.abandoned[0].reason == ABANDON_INFEASIBLE
        assert {c.request.request_id for c in report.completed} == {0, 2, 3}
        assert all(c.slo_met for c in report.completed)
        assert report.num_offered == len(trace)

    def test_patience_abandonment_is_exact(self):
        platform = _FixedLatencyPlatform(2.0)
        trace = with_service_levels(constant_trace(0.0, 5), patience_s=3.0)
        report = ApplianceServer(platform, 1, scheduler="fifo").serve(trace)
        # Service 0-2 and 2-4; the rest hit the 3 s patience while queued.
        assert report.num_requests == 2
        assert report.num_abandoned == 3
        for abandoned in report.abandoned:
            assert abandoned.reason == ABANDON_TIMEOUT
            assert abandoned.abandoned_time_s == pytest.approx(3.0)
            assert abandoned.waited_s == pytest.approx(3.0)
        assert report.num_offered == len(trace)
        assert report.abandonment_rate == pytest.approx(3 / 5)

    def test_conservation_under_every_policy(self):
        platform = _TokenProportionalPlatform(0.3)
        trace = with_service_levels(
            poisson_trace(3.0, 30.0, seed=6), slo_s=5.0, patience_s=8.0
        )
        for policy in SCHEDULERS:
            report = ApplianceServer(platform, 1, scheduler=policy).serve(trace)
            assert report.num_requests + report.num_abandoned == len(trace), policy


class TestReportExtensions:
    def test_slo_violation_accounting(self):
        platform = _FixedLatencyPlatform(1.0)
        trace = with_service_levels(constant_trace(0.0, 3), slo_s=1.5)
        report = ApplianceServer(platform, 1).serve(trace)
        # Responses are 1, 2, 3 seconds against a 1.5 s SLO.
        assert report.slo_violations == 2
        assert report.slo_violation_rate == pytest.approx(2 / 3)
        assert report.slo_attainment == pytest.approx(1 / 3)

    def test_slo_rate_ignores_unsloed_requests(self):
        platform = _FixedLatencyPlatform(1.0)
        sloed = with_service_levels(constant_trace(0.0, 2), slo_s=10.0,
                                    service_class="chat")
        best_effort = with_service_levels(
            constant_trace(0.0, 2, start_time_s=10.0), service_class="batch"
        )
        report = ApplianceServer(platform, 1).serve(merge_traces(sloed, best_effort))
        assert report.slo_violation_rate == 0.0
        assert report.slo_attainment == 1.0

    def test_per_class_percentiles(self):
        platform = _TokenProportionalPlatform(0.1)
        fast = with_service_levels(
            [ServiceRequest(0, 0.0, Workload(1, 5))], service_class="fast"
        )
        slow = with_service_levels(
            [ServiceRequest(0, 100.0, Workload(1, 50))], service_class="slow"
        )
        report = ApplianceServer(platform, 1).serve(merge_traces(fast, slow))
        assert report.service_classes() == ["fast", "slow"]
        by_class = report.percentiles_by_class(50)
        assert by_class["fast"] == pytest.approx(0.5)
        assert by_class["slow"] == pytest.approx(5.0)
        # The unfiltered percentile mixes both classes.
        assert report.response_time_percentile_s(50) == pytest.approx(2.75)
        # Unknown class: no samples.
        assert report.response_time_percentile_s(50, service_class="nope") == 0.0

    def test_report_records_scheduler_and_appliances(self):
        report = ApplianceServer(
            _FixedLatencyPlatform(1.0), 2, "dfx", scheduler="sjf"
        ).serve(constant_trace(1.0, 3))
        assert report.scheduler == "sjf"
        assert report.appliance_clusters == {"dfx": 2}
        assert set(report.utilization_by_appliance()) == {"dfx"}
        assert report.utilization_by_appliance()["dfx"] == pytest.approx(
            report.utilization
        )


class TestSimulatorFrontEnd:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigurationError):
            ApplianceServer(_FixedLatencyPlatform(1.0), scheduler="lifo").serve(
                constant_trace(1.0, 2)
            )
        with pytest.raises(ConfigurationError):
            make_scheduler(42)

    def test_scheduler_instance_passes_through(self):
        policy = FIFOScheduler()
        assert make_scheduler(policy) is policy
        report = ApplianceServer(
            _FixedLatencyPlatform(1.0), scheduler=policy
        ).serve(constant_trace(2.0, 2))
        assert report.scheduler == "fifo"

    def test_empty_trace(self):
        report = ApplianceServer(_FixedLatencyPlatform(1.0), scheduler="deadline").serve([])
        assert report.num_requests == 0
        assert report.num_abandoned == 0
        assert report.makespan_s == 0.0

    def test_duplicate_unit_ids_rejected(self):
        oracle = LatencyOracle(_FixedLatencyPlatform(1.0))
        units = [
            ServerUnit(unit_id=0, appliance="a", oracle=oracle),
            ServerUnit(unit_id=0, appliance="b", oracle=oracle),
        ]
        with pytest.raises(ConfigurationError):
            simulate(units, constant_trace(1.0, 2), FIFOScheduler(), platform="a+b")

    def test_non_positional_unit_ids_work(self):
        oracle = LatencyOracle(_FixedLatencyPlatform(1.0))
        units = [
            ServerUnit(unit_id=7, appliance="fixed", oracle=oracle),
            ServerUnit(unit_id=3, appliance="fixed", oracle=oracle),
        ]
        report = simulate(units, constant_trace(0.0, 4), FIFOScheduler(), platform="fixed")
        assert report.num_requests == 4
        assert {c.cluster_id for c in report.completed} == {3, 7}

    def test_custom_policy_that_idles_leaves_unserved_requests_accounted(self):
        class Refusenik(SchedulingPolicy):
            name = "refusenik"

            def select(self, now, queue, estimate):
                return None

        oracle = LatencyOracle(_FixedLatencyPlatform(1.0))
        units = [ServerUnit(unit_id=0, appliance="fixed", oracle=oracle)]
        report = simulate(units, constant_trace(1.0, 3), Refusenik(), platform="fixed")
        assert report.num_requests == 0
        assert report.num_abandoned == 3
        assert report.num_offered == 3
