"""Tests for workload definitions and the evaluation grid."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    ARTICLE_WRITING_WORKLOAD,
    BALANCED_64_64_WORKLOAD,
    CHATBOT_WORKLOAD,
    FIGURE3_WORKLOADS,
    PAPER_INPUT_LENGTHS,
    PAPER_OUTPUT_LENGTHS,
    PAPER_WORKLOAD_GRID,
    Workload,
    workload_grid,
)


class TestWorkload:
    def test_label_format_matches_paper(self):
        assert Workload(32, 256).label == "[32:256]"

    def test_total_tokens_and_iterations(self):
        workload = Workload(64, 16)
        assert workload.total_tokens == 80
        assert workload.generation_iterations == 15

    def test_single_output_token_means_no_generation_iterations(self):
        assert Workload(128, 1).generation_iterations == 0

    def test_ratio(self):
        assert Workload(64, 16).input_output_ratio == pytest.approx(4.0)

    def test_invalid_workloads_rejected(self):
        with pytest.raises(ConfigurationError):
            Workload(0, 4)
        with pytest.raises(ConfigurationError):
            Workload(4, 0)

    def test_workloads_are_hashable_value_objects(self):
        assert Workload(32, 4) == Workload(32, 4)
        assert len({Workload(32, 4), Workload(32, 4), Workload(32, 8)}) == 2


class TestPaperGrid:
    def test_grid_has_15_points(self):
        assert len(PAPER_WORKLOAD_GRID) == 15

    def test_grid_covers_all_combinations(self):
        labels = {workload.label for workload in PAPER_WORKLOAD_GRID}
        for input_tokens in PAPER_INPUT_LENGTHS:
            for output_tokens in PAPER_OUTPUT_LENGTHS:
                assert f"[{input_tokens}:{output_tokens}]" in labels

    def test_grid_order_is_input_major(self):
        assert PAPER_WORKLOAD_GRID[0] == Workload(32, 1)
        assert PAPER_WORKLOAD_GRID[4] == Workload(32, 256)
        assert PAPER_WORKLOAD_GRID[5] == Workload(64, 1)
        assert PAPER_WORKLOAD_GRID[-1] == Workload(128, 256)

    def test_custom_grid_builder(self):
        grid = workload_grid((8,), (1, 2))
        assert grid == [Workload(8, 1), Workload(8, 2)]

    def test_figure3_sweep_shape(self):
        assert len(FIGURE3_WORKLOADS) == 7
        assert FIGURE3_WORKLOADS[0] == Workload(128, 1)
        assert FIGURE3_WORKLOADS[-1] == Workload(32, 4)


class TestServicePresets:
    def test_chatbot_is_one_to_one(self):
        assert CHATBOT_WORKLOAD.input_output_ratio == pytest.approx(1.0)

    def test_article_writing_generates_more_than_it_reads(self):
        assert ARTICLE_WRITING_WORKLOAD.output_tokens > ARTICLE_WRITING_WORKLOAD.input_tokens

    def test_balanced_preset_is_64_64(self):
        assert BALANCED_64_64_WORKLOAD == Workload(64, 64)
