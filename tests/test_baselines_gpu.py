"""Tests for the calibrated GPU appliance baseline (Fig. 3, 4, 14)."""

import pytest

from repro.baselines.gpu import GPU_LAYER_TIME_FRACTIONS, GPUAppliance
from repro.baselines.specs import DEFAULT_V100, GPU_APPLIANCE_COST
from repro.errors import ConfigurationError
from repro.model.config import GPT2_1_5B, GPT2_345M, GPT2_774M
from repro.results import PHASE_FFN, PHASE_LAYERNORM, PHASE_RESIDUAL, PHASE_SELF_ATTENTION
from repro.workloads import Workload


@pytest.fixture(scope="module")
def gpu_1_5b():
    return GPUAppliance(GPT2_1_5B, num_devices=4)


class TestSequentialBottleneck:
    """Reproduces the paper's motivation (Fig. 3)."""

    def test_output_tokens_dominate_latency(self, gpu_1_5b):
        base = gpu_1_5b.run(Workload(32, 1)).latency_ms
        plus_outputs = gpu_1_5b.run(Workload(32, 4)).latency_ms
        plus_inputs = gpu_1_5b.run(Workload(128, 1)).latency_ms
        per_output = (plus_outputs - base) / 3
        per_input = (plus_inputs - base) / 96
        # Paper: ~75 ms per output token vs ~0.02 ms per input token.
        assert per_output > 1000 * per_input
        assert per_output == pytest.approx(75.45, rel=0.20)
        assert per_input < 0.2

    def test_generation_throughput_roughly_constant(self, gpu_1_5b):
        # Fig. 16: GPU tokens/s barely moves as output length scales.
        short = gpu_1_5b.run(Workload(32, 16))
        long = gpu_1_5b.run(Workload(32, 256))
        assert long.tokens_per_second == pytest.approx(short.tokens_per_second, rel=0.30)


class TestPaperLatencyAgreement:
    @pytest.mark.parametrize(
        "config, num_devices, workload, paper_ms",
        [
            (GPT2_345M, 1, Workload(32, 1), 38.1),
            (GPT2_345M, 1, Workload(32, 256), 9506.4),
            (GPT2_774M, 2, Workload(64, 64), 3903.6),
            (GPT2_1_5B, 4, Workload(32, 1), 86.7),
            (GPT2_1_5B, 4, Workload(64, 64), 4921.2),
            (GPT2_1_5B, 4, Workload(32, 256), 19873.6),
        ],
    )
    def test_latency_close_to_measurement(self, config, num_devices, workload, paper_ms):
        appliance = GPUAppliance(config, num_devices=num_devices)
        assert appliance.run(workload).latency_ms == pytest.approx(paper_ms, rel=0.20)

    def test_table2_throughput_point(self, gpu_1_5b):
        # Table II: 13.01 tokens/s on the 1.5B model at 64:64.
        assert gpu_1_5b.run(Workload(64, 64)).tokens_per_second == pytest.approx(
            13.01, rel=0.15
        )


class TestBreakdown:
    def test_latency_fractions_match_fig4(self, gpu_1_5b):
        result = gpu_1_5b.run(Workload(64, 64))
        fractions = result.breakdown_fractions()
        layer_total = sum(
            fractions[phase] for phase in GPU_LAYER_TIME_FRACTIONS
        )
        for phase, expected in GPU_LAYER_TIME_FRACTIONS.items():
            assert fractions[phase] / layer_total == pytest.approx(expected, abs=0.02)

    def test_operation_fractions_match_fig4_right_bar(self, gpu_1_5b):
        ops = gpu_1_5b.operation_count_fractions()
        assert ops[PHASE_FFN] == pytest.approx(0.6659, abs=0.02)
        assert ops[PHASE_SELF_ATTENTION] == pytest.approx(0.3331, abs=0.02)
        assert ops[PHASE_LAYERNORM] < 0.005
        assert ops[PHASE_RESIDUAL] < 0.001

    def test_layernorm_residual_disparity(self, gpu_1_5b):
        # The paper's point: 22.8% of time for 0.11% of the operations.
        time_fractions = GPU_LAYER_TIME_FRACTIONS
        op_fractions = gpu_1_5b.operation_count_fractions()
        time_share = time_fractions[PHASE_LAYERNORM] + time_fractions[PHASE_RESIDUAL]
        op_share = op_fractions[PHASE_LAYERNORM] + op_fractions[PHASE_RESIDUAL]
        assert time_share > 0.2
        assert op_share < 0.005


class TestConfigurationAndEnergy:
    def test_head_count_must_divide_across_gpus(self):
        with pytest.raises(ConfigurationError):
            GPUAppliance(GPT2_774M, num_devices=3)
        with pytest.raises(ConfigurationError):
            GPUAppliance(GPT2_345M, num_devices=0)

    def test_power_is_average_measured_power(self, gpu_1_5b):
        result = gpu_1_5b.run(Workload(32, 16))
        assert result.total_power_watts == pytest.approx(4 * DEFAULT_V100.average_power_watts)

    def test_more_gpus_reduce_weight_read_but_add_sync(self):
        one = GPUAppliance(GPT2_345M, 1).per_layer_ms()
        four = GPUAppliance(GPT2_345M, 4).per_layer_ms()
        # Fixed overheads dominate, so four GPUs are NOT 4x faster per layer.
        assert four > one / 2

    def test_cost_sheet_matches_paper(self):
        assert GPU_APPLIANCE_COST.accelerator_cost_usd == pytest.approx(45_832, rel=0.001)

    def test_request_flops_scale_with_tokens(self, gpu_1_5b):
        small = gpu_1_5b.request_flops(Workload(32, 8))
        large = gpu_1_5b.request_flops(Workload(32, 64))
        assert large > small
