"""Unit tests for repro.model.config (paper Table I)."""

import pytest

from repro.errors import ConfigurationError
from repro.model import config as config_module
from repro.model.config import (
    GPT2Config,
    GPT2_1_5B,
    GPT2_345M,
    GPT2_774M,
    PAPER_MODELS,
    from_preset,
)


class TestTable1Configurations:
    """The three paper models must match Table I exactly."""

    def test_345m_row(self):
        assert GPT2_345M.n_embd == 1024
        assert GPT2_345M.n_head == 16
        assert GPT2_345M.head_dim == 64
        assert GPT2_345M.n_layer == 24

    def test_774m_row(self):
        assert GPT2_774M.n_embd == 1280
        assert GPT2_774M.n_head == 20
        assert GPT2_774M.head_dim == 64
        assert GPT2_774M.n_layer == 36

    def test_1_5b_row_uses_adjusted_head_count(self):
        # The paper changes OpenAI's 25 heads to 24 so the model parallelizes.
        assert GPT2_1_5B.n_embd == 1536
        assert GPT2_1_5B.n_head == 24
        assert GPT2_1_5B.head_dim == 64
        assert GPT2_1_5B.n_layer == 48

    def test_all_paper_models_have_head_dim_64(self):
        for model in PAPER_MODELS:
            assert model.head_dim == 64

    @pytest.mark.parametrize(
        "model, approx_params",
        [(GPT2_345M, 345e6), (GPT2_774M, 774e6), (GPT2_1_5B, 1.5e9)],
    )
    def test_parameter_counts_match_model_names(self, model, approx_params):
        assert model.total_parameter_count() == pytest.approx(approx_params, rel=0.12)


class TestConfigValidation:
    def test_embedding_must_divide_by_heads(self):
        with pytest.raises(ConfigurationError):
            GPT2Config(name="bad", n_layer=2, n_embd=100, n_head=3)

    def test_positive_dimensions_required(self):
        with pytest.raises(ConfigurationError):
            GPT2Config(name="bad", n_layer=0, n_embd=64, n_head=4)
        with pytest.raises(ConfigurationError):
            GPT2Config(name="bad", n_layer=2, n_embd=64, n_head=4, vocab_size=0)

    def test_ffn_dim_is_four_times_embedding(self):
        assert GPT2_1_5B.ffn_dim == 4 * GPT2_1_5B.n_embd

    def test_scaled_returns_modified_copy(self):
        wider = GPT2_345M.scaled(n_embd=2048, n_head=32)
        assert wider.n_embd == 2048
        assert GPT2_345M.n_embd == 1024  # original untouched


class TestWeightSizing:
    def test_layer_parameter_count_formula(self):
        config = GPT2_345M
        emb = config.n_embd
        expected = (
            emb * 3 * emb + 3 * emb
            + emb * emb + emb
            + emb * 4 * emb + 4 * emb
            + 4 * emb * emb + emb
            + 4 * emb
        )
        assert config.layer_parameter_count() == expected

    def test_total_weight_bytes_fp16_1_5b_fits_four_hbm_stacks(self):
        # 1.5B parameters in FP16 is ~2.9 GiB: it does not fit one 8 GB HBM
        # alongside activations+KV comfortably at full context, but a quarter
        # of it does — the motivation for the 4-FPGA cluster.
        total_gib = GPT2_1_5B.total_weight_bytes() / 2**30
        assert 2.5 < total_gib < 3.5

    def test_preset_lookup(self):
        assert from_preset("1.5b") is GPT2_1_5B
        assert from_preset("GPT2-345M") is GPT2_345M
        with pytest.raises(ConfigurationError):
            from_preset("13b")

    def test_available_presets_sorted(self):
        presets = config_module.available_presets()
        assert presets == sorted(presets)
        assert "1.5b" in presets
