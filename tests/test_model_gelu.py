"""Unit tests for the GELU variants, especially the DFX lookup table (Sec. V-C)."""

import numpy as np
import pytest

from repro.model import gelu


class TestReferenceGelus:
    def test_exact_gelu_known_values(self):
        # GELU(0) = 0; GELU(x) -> x for large x; GELU(-x) -> 0 for large x.
        assert gelu.gelu_exact(np.array([0.0]))[0] == pytest.approx(0.0, abs=1e-7)
        assert gelu.gelu_exact(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-4)
        assert gelu.gelu_exact(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-4)

    def test_tanh_approximation_close_to_exact(self):
        grid = np.linspace(-6, 6, 2001).astype(np.float32)
        max_error = float(np.max(np.abs(gelu.gelu_tanh(grid) - gelu.gelu_exact(grid))))
        assert max_error < 5e-3

    def test_gelu_is_monotone_on_positive_axis(self):
        grid = np.linspace(0, 8, 100)
        values = gelu.gelu_tanh(grid)
        assert np.all(np.diff(values) >= 0)


class TestLookupTable:
    def test_default_table_has_2048_samples_over_minus8_8(self):
        table = gelu.GeluLookupTable()
        assert table.samples == gelu.DFX_GELU_LUT_SAMPLES == 2048
        assert table.input_range == (-8.0, 8.0)

    def test_fp16_mse_is_zero_as_paper_claims(self):
        # "We sample 2048 inputs that achieve a mean squared error of 0 in
        #  half-precision floating-point" (Sec. V-C).
        table = gelu.GeluLookupTable()
        assert table.mean_squared_error_fp16() == pytest.approx(0.0, abs=1e-7)

    def test_max_error_against_tanh_small(self):
        table = gelu.GeluLookupTable()
        assert table.max_error() < 1e-3

    def test_out_of_range_behaviour(self):
        table = gelu.GeluLookupTable()
        assert table(np.array([100.0]))[0] == pytest.approx(100.0)
        assert table(np.array([-100.0]))[0] == pytest.approx(0.0, abs=1e-6)

    def test_fewer_samples_increase_error(self):
        coarse = gelu.GeluLookupTable(samples=32)
        fine = gelu.GeluLookupTable(samples=2048)
        assert coarse.max_error() > fine.max_error()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            gelu.GeluLookupTable(samples=1)
        with pytest.raises(ValueError):
            gelu.GeluLookupTable(input_range=(3.0, -3.0))

    def test_module_level_lut_matches_default_table(self):
        grid = np.linspace(-2, 2, 17).astype(np.float32)
        np.testing.assert_array_equal(gelu.gelu_lut(grid), gelu.DEFAULT_GELU_LUT(grid))

    def test_lut_matches_tanh_in_fp16_on_activations(self):
        rng = np.random.default_rng(0)
        activations = rng.normal(scale=2.0, size=4096).astype(np.float32)
        lut_fp16 = gelu.gelu_lut(activations).astype(np.float16)
        tanh_fp16 = gelu.gelu_tanh(activations).astype(np.float16)
        mismatch = np.mean(lut_fp16 != tanh_fp16)
        assert mismatch < 0.05  # the paper reports negligible divergence
