"""Tests for intra-layer model parallelism (paper Sec. IV-B, Fig. 6)."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.model.config import GPT2_1_5B, GPT2_345M, GPT2_TEST_TINY
from repro.model.weights import generate_weights
from repro.parallel.partitioner import (
    build_partition_plan,
    partition_layer_weights,
    partition_model_weights,
)


class TestPlanStructure:
    @pytest.mark.parametrize("num_devices", [1, 2, 4])
    def test_heads_divided_evenly(self, num_devices):
        plan = build_partition_plan(GPT2_1_5B, num_devices)
        for device in plan.devices:
            assert device.num_heads == GPT2_1_5B.n_head // num_devices
        all_heads = [head for device in plan.devices for head in device.head_ids]
        assert all_heads == list(range(GPT2_1_5B.n_head))

    def test_column_splits(self):
        plan = build_partition_plan(GPT2_1_5B, 4)
        device = plan.device(0)
        assert device.qkv_output_dim == GPT2_1_5B.n_embd // 4
        assert device.ffn1_output_dim == GPT2_1_5B.ffn_dim // 4
        assert device.ffn2_output_dim == GPT2_1_5B.n_embd // 4

    def test_vocab_rows_cover_full_vocabulary(self):
        plan = build_partition_plan(GPT2_1_5B, 4)
        assert sum(device.vocab_rows for device in plan.devices) == GPT2_1_5B.vocab_size

    def test_uneven_head_split_rejected(self):
        # The unadjusted OpenAI 1.5B model (25 heads) cannot split over 4 devices,
        # which is exactly why the paper changes it to 24.
        original_1_5b = GPT2_1_5B.scaled(name="gpt2-1.5b-25heads", n_embd=1600, n_head=25)
        with pytest.raises(PartitioningError):
            build_partition_plan(original_1_5b, 4)

    def test_invalid_device_count(self):
        with pytest.raises(PartitioningError):
            build_partition_plan(GPT2_345M, 0)

    def test_device_index_bounds(self):
        plan = build_partition_plan(GPT2_345M, 2)
        with pytest.raises(PartitioningError):
            plan.device(2)

    def test_sync_schedule_counts(self):
        plan = build_partition_plan(GPT2_1_5B, 4)
        assert plan.sync_events_per_layer() == 4
        payloads = plan.sync_payload_elements_per_layer()
        assert payloads == (GPT2_1_5B.n_embd, GPT2_1_5B.n_embd,
                            GPT2_1_5B.ffn_dim, GPT2_1_5B.n_embd)


class TestMemorySizing:
    def test_per_device_weights_shrink_with_devices(self):
        one = build_partition_plan(GPT2_1_5B, 1).device_weight_bytes()
        four = build_partition_plan(GPT2_1_5B, 4).device_weight_bytes()
        assert four < one
        assert four == pytest.approx(one / 4, rel=0.05)

    def test_1_5b_partition_fits_8gb_hbm_only_when_split(self):
        single = build_partition_plan(GPT2_1_5B, 1).device_weight_bytes()
        quad = build_partition_plan(GPT2_1_5B, 4).device_weight_bytes()
        assert quad < 8 * 2**30
        assert single < 8 * 2**30  # weights alone fit, but barely
        assert single / 2**30 > 2.5


class TestWeightSlicing:
    @pytest.fixture(scope="class")
    def setup(self):
        weights = generate_weights(GPT2_TEST_TINY, seed=0)
        plan = build_partition_plan(GPT2_TEST_TINY, 2)
        return weights, plan

    def test_qkv_head_slices_cover_matrix(self, setup):
        weights, plan = setup
        layer = weights.layers[0]
        emb = GPT2_TEST_TINY.n_embd
        slices = [
            partition_layer_weights(layer, GPT2_TEST_TINY, plan.device(d))
            for d in range(2)
        ]
        # Reassemble the Q block from the two devices and compare.
        q_dim = plan.device(0).qkv_output_dim
        q_full = np.concatenate([s.w_qkv[:, :q_dim] for s in slices], axis=1)
        np.testing.assert_array_equal(q_full, layer.w_qkv[:, :emb])

    def test_ffn_column_slices_cover_matrix(self, setup):
        weights, plan = setup
        layer = weights.layers[0]
        slices = [
            partition_layer_weights(layer, GPT2_TEST_TINY, plan.device(d))
            for d in range(2)
        ]
        ffn1_full = np.concatenate([s.w_ffn1 for s in slices], axis=1)
        np.testing.assert_array_equal(ffn1_full, layer.w_ffn1)
        proj_full = np.concatenate([s.w_attn_proj for s in slices], axis=1)
        np.testing.assert_array_equal(proj_full, layer.w_attn_proj)

    def test_layer_norm_parameters_replicated(self, setup):
        weights, plan = setup
        layer = weights.layers[0]
        for device_id in range(2):
            sliced = partition_layer_weights(layer, GPT2_TEST_TINY, plan.device(device_id))
            np.testing.assert_array_equal(sliced.ln1_gamma, layer.ln1_gamma)
            np.testing.assert_array_equal(sliced.ln2_beta, layer.ln2_beta)

    def test_partition_model_weights_covers_all_layers(self, setup):
        weights, plan = setup
        device_layers = partition_model_weights(weights, plan, 0)
        assert len(device_layers) == GPT2_TEST_TINY.n_layer

    def test_single_device_partition_is_identity(self):
        weights = generate_weights(GPT2_TEST_TINY, seed=0)
        plan = build_partition_plan(GPT2_TEST_TINY, 1)
        sliced = partition_layer_weights(weights.layers[0], GPT2_TEST_TINY, plan.device(0))
        np.testing.assert_array_equal(sliced.w_ffn1, weights.layers[0].w_ffn1)
        np.testing.assert_array_equal(sliced.w_attn_proj, weights.layers[0].w_attn_proj)
