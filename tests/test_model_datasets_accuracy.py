"""Tests for the synthetic cloze datasets and the accuracy comparison (Sec. VII-A)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.model.accuracy import compare_pipelines, evaluate_cloze, score_candidates
from repro.model.config import GPT2_TEST_TINY
from repro.model.datasets import (
    CBT_CN_LIKE,
    ClozeDatasetSpec,
    ClozeExample,
    PAPER_DATASET_SPECS,
    WSC_LIKE,
    generate_cloze_dataset,
    paper_datasets,
)
from repro.model.gpt2 import GPT2Model
from repro.model.numerics import FP16_DFX, FP16_GPU


class TestClozeExamples:
    def test_answer_token_lookup(self):
        example = ClozeExample((1, 2, 3), (10, 20, 30), answer_index=1)
        assert example.answer_token_id == 20

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClozeExample((), (1, 2), 0)
        with pytest.raises(ConfigurationError):
            ClozeExample((1,), (1,), 0)
        with pytest.raises(ConfigurationError):
            ClozeExample((1,), (1, 2), 5)


class TestDatasetGeneration:
    def test_shapes_follow_spec(self):
        dataset = generate_cloze_dataset(WSC_LIKE, vocab_size=512)
        assert len(dataset) == WSC_LIKE.num_examples
        example = dataset.examples[0]
        assert len(example.context_token_ids) == WSC_LIKE.context_length
        assert len(example.candidate_token_ids) == WSC_LIKE.num_candidates

    def test_candidates_are_distinct(self):
        dataset = generate_cloze_dataset(CBT_CN_LIKE, vocab_size=512)
        for example in dataset:
            assert len(set(example.candidate_token_ids)) == len(example.candidate_token_ids)

    def test_deterministic_per_seed(self):
        first = generate_cloze_dataset(WSC_LIKE, vocab_size=512)
        second = generate_cloze_dataset(WSC_LIKE, vocab_size=512)
        assert first.examples[0] == second.examples[0]

    def test_token_ids_within_vocab(self):
        dataset = generate_cloze_dataset(WSC_LIKE, vocab_size=100)
        for example in dataset:
            assert all(3 <= token < 100 for token in example.context_token_ids)
            assert all(3 <= token < 100 for token in example.candidate_token_ids)

    def test_three_paper_datasets(self):
        datasets = paper_datasets(vocab_size=256)
        assert [d.name for d in datasets] == [spec.name for spec in PAPER_DATASET_SPECS]

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            ClozeDatasetSpec("bad", 0, 10, 2, 0)
        with pytest.raises(ConfigurationError):
            generate_cloze_dataset(
                ClozeDatasetSpec("bad", 5, 10, 10, 0), vocab_size=11
            )


class TestAccuracyComparison:
    @pytest.fixture(scope="class")
    def models(self, request):
        weights = request.getfixturevalue("tiny_weights")
        return GPT2Model(weights, FP16_GPU), GPT2Model(weights, FP16_DFX)

    @pytest.fixture(scope="class")
    def small_dataset(self):
        spec = ClozeDatasetSpec("mini", num_examples=6, context_length=8,
                                num_candidates=3, seed=42)
        return generate_cloze_dataset(spec, vocab_size=GPT2_TEST_TINY.vocab_size)

    def test_score_candidates_returns_one_score_per_candidate(self, models, small_dataset):
        gpu_model, _ = models
        scores = score_candidates(gpu_model, small_dataset.examples[0])
        assert scores.shape == (3,)

    def test_evaluation_counts(self, models, small_dataset):
        gpu_model, _ = models
        evaluation = evaluate_cloze(gpu_model, small_dataset)
        assert evaluation.num_examples == 6
        assert 0 <= evaluation.num_correct <= 6
        assert len(evaluation.predictions) == 6
        assert 0.0 <= evaluation.accuracy <= 1.0

    def test_pipelines_agree_on_nearly_all_examples(self, models, small_dataset):
        gpu_model, dfx_model = models
        comparison = compare_pipelines(gpu_model, dfx_model, small_dataset)
        # Paper Sec. VII-A: accuracy differences between the platforms are at
        # the 0.3% level; on a 6-example set the pipelines should agree on
        # every (or all but one) example and the accuracy delta must be tiny.
        assert comparison.agreement >= 5 / 6
        assert abs(comparison.accuracy_delta) <= 1 / 6

    def test_comparison_is_deterministic(self, models, small_dataset):
        gpu_model, dfx_model = models
        first = compare_pipelines(gpu_model, dfx_model, small_dataset)
        second = compare_pipelines(gpu_model, dfx_model, small_dataset)
        assert first.gpu.predictions == second.gpu.predictions
        assert first.dfx.predictions == second.dfx.predictions
