"""Unit tests for the functional decoder building blocks."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.model import layers
from repro.model.numerics import FP16_DFX, FP32_EXACT


class TestLinear:
    def test_matches_numpy_affine(self, rng):
        x = rng.normal(size=(5, 8)).astype(np.float32)
        w = rng.normal(size=(8, 12)).astype(np.float32)
        b = rng.normal(size=12).astype(np.float32)
        np.testing.assert_allclose(
            layers.linear(x, w, b), x @ w + b, rtol=1e-5, atol=1e-5
        )

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ExecutionError):
            layers.linear(np.zeros((2, 3)), np.zeros((4, 5)), np.zeros(5))


class TestLayerNorm:
    def test_output_is_normalized(self, rng):
        x = rng.normal(loc=5.0, scale=3.0, size=(4, 64)).astype(np.float32)
        gamma = np.ones(64, dtype=np.float32)
        beta = np.zeros(64, dtype=np.float32)
        out = layers.layer_norm(x, gamma, beta)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gamma_beta_applied(self, rng):
        x = rng.normal(size=(2, 16)).astype(np.float32)
        gamma = np.full(16, 2.0, dtype=np.float32)
        beta = np.full(16, 1.0, dtype=np.float32)
        out = layers.layer_norm(x, gamma, beta)
        np.testing.assert_allclose(out.mean(axis=-1), 1.0, atol=1e-4)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(3, 11)).astype(np.float32)
        out = layers.softmax(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-5)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(2, 7)).astype(np.float32)
        np.testing.assert_allclose(
            layers.softmax(x), layers.softmax(x + 100.0), atol=1e-5
        )

    def test_large_values_do_not_overflow(self):
        x = np.array([[1e4, 1e4 - 1.0]], dtype=np.float32)
        out = layers.softmax(x)
        assert np.all(np.isfinite(out))


class TestCausalMask:
    def test_square_mask_is_lower_triangular(self):
        mask = layers.causal_mask(4, 4)
        expected = np.tril(np.ones((4, 4), dtype=bool))
        np.testing.assert_array_equal(mask, expected)

    def test_generation_step_mask_allows_full_history(self):
        # A single query at position 7 of an 8-long context sees everything.
        mask = layers.causal_mask(1, 8)
        assert mask.shape == (1, 8)
        assert mask.all()

    def test_offset_mask(self):
        mask = layers.causal_mask(2, 5)
        np.testing.assert_array_equal(mask[0], [True, True, True, True, False])
        np.testing.assert_array_equal(mask[1], [True, True, True, True, True])

    def test_query_longer_than_keys_rejected(self):
        with pytest.raises(ExecutionError):
            layers.causal_mask(5, 3)


class TestHeads:
    def test_split_merge_round_trip(self, rng):
        x = rng.normal(size=(6, 32)).astype(np.float32)
        np.testing.assert_array_equal(layers.merge_heads(layers.split_heads(x, 4)), x)

    def test_split_shape(self, rng):
        x = rng.normal(size=(6, 32)).astype(np.float32)
        assert layers.split_heads(x, 4).shape == (4, 6, 8)

    def test_invalid_head_count(self):
        with pytest.raises(ExecutionError):
            layers.split_heads(np.zeros((2, 10)), 3)


class TestAttention:
    def test_uniform_attention_when_scores_equal(self):
        n_head, seq, dim = 2, 3, 4
        query = np.zeros((n_head, 1, dim), dtype=np.float32)
        key = np.zeros((n_head, seq, dim), dtype=np.float32)
        value = np.stack(
            [np.arange(seq * dim, dtype=np.float32).reshape(seq, dim)] * n_head
        )
        out = layers.scaled_dot_product_attention(query, key, value, causal=True)
        np.testing.assert_allclose(out[0, 0], value[0].mean(axis=0), atol=1e-5)

    def test_causal_mask_blocks_future(self, rng):
        n_head, seq, dim = 1, 4, 8
        query = rng.normal(size=(n_head, seq, dim)).astype(np.float32)
        key = rng.normal(size=(n_head, seq, dim)).astype(np.float32)
        value = rng.normal(size=(n_head, seq, dim)).astype(np.float32)
        full = layers.scaled_dot_product_attention(query, key, value, causal=True)
        # Row 0 attends only to position 0, so changing later values must not
        # affect it.
        value_perturbed = value.copy()
        value_perturbed[:, 1:, :] += 100.0
        perturbed = layers.scaled_dot_product_attention(
            query, key, value_perturbed, causal=True
        )
        np.testing.assert_allclose(full[0, 0], perturbed[0, 0], atol=1e-4)
        assert not np.allclose(full[0, -1], perturbed[0, -1])

    def test_fp16_mode_returns_fp16(self, rng):
        q = rng.normal(size=(2, 3, 4)).astype(np.float16)
        out = layers.scaled_dot_product_attention(q, q, q, numerics=FP16_DFX)
        assert out.dtype == np.float16

    def test_shape_checks(self):
        with pytest.raises(ExecutionError):
            layers.scaled_dot_product_attention(
                np.zeros((2, 3)), np.zeros((2, 3, 4)), np.zeros((2, 3, 4))
            )
        with pytest.raises(ExecutionError):
            layers.scaled_dot_product_attention(
                np.zeros((1, 2, 4)), np.zeros((1, 3, 4)), np.zeros((1, 4, 4))
            )
