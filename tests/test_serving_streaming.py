"""Streaming simulator core: calendar queue, quantile sketches, lazy traces.

Covers the three legs of the streaming rework:

* :class:`~repro.serving.calendar.CalendarQueue` pops bit-identically to a
  binary heap over any event set (the event loop's ordering contract rides
  on this), across resizes and pushes into the past;
* :class:`~repro.serving.stats.QuantileSketch` answers every percentile
  query within its hard rank-error bound (``eps * n + 1`` ranks), exactly
  for short streams, deterministically for seeded runs;
* streaming-mode reports (``retain_records=False``) agree with retained-
  mode reports on every counter statistic exactly and on every percentile
  within the sketch bound, across the randomized property-suite scenarios
  (including fault campaigns), while lazy traces serve identically to
  their eager twins.
"""

import heapq
import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    ApplianceServer,
    bursty_trace,
    constant_trace,
    diurnal_trace,
    merge_traces,
    poisson_trace,
    with_service_levels,
)
from repro.serving.calendar import CalendarQueue
from repro.serving.requests import ServiceRequest
from repro.serving.stats import DEFAULT_EPS, QuantileSketch
from serving_doubles import FixedLatencyPlatform as _FixedLatencyPlatform
from test_serving_properties import (
    SEEDS,
    random_fault_scenario,
    random_scenario,
)
from repro.workloads import Workload


# --------------------------------------------------------------- CalendarQueue


class TestCalendarQueue:
    @pytest.mark.parametrize("seed", range(8))
    def test_pop_order_is_heap_identical(self, seed):
        """Random interleaved push/pop/peek matches heapq bit for bit."""
        rng = np.random.default_rng(seed)
        calendar = CalendarQueue()
        heap: list[tuple] = []
        clock = 0.0
        for step in range(600):
            action = rng.random()
            if action < 0.6 or not heap:
                # Mostly future events, occasionally duplicates of the
                # current time (tie-breaking) or pushes into the past.
                if rng.random() < 0.1:
                    time_s = max(0.0, clock - float(rng.exponential(2.0)))
                else:
                    time_s = clock + float(rng.exponential(5.0))
                event = (time_s, int(rng.integers(0, 4)), step)
                calendar.push(event)
                heapq.heappush(heap, event)
            else:
                assert calendar.peek() == heap[0]
                popped = calendar.pop()
                assert popped == heapq.heappop(heap)
                clock = popped[0]
            assert len(calendar) == len(heap)
        while heap:
            assert calendar.pop() == heapq.heappop(heap)
        assert not calendar

    def test_resize_grow_and_shrink_preserve_order(self):
        """Thousands of events force growth; draining forces shrink."""
        rng = np.random.default_rng(42)
        times = rng.uniform(0.0, 5000.0, size=5000)
        calendar = CalendarQueue()
        for index, time_s in enumerate(times):
            calendar.push((float(time_s), index))
        drained = [calendar.pop() for _ in range(len(calendar))]
        assert drained == sorted(
            (float(t), i) for i, t in enumerate(times)
        )

    def test_equal_times_break_ties_lexicographically(self):
        calendar = CalendarQueue()
        for unit in (3, 1, 2, 0):
            calendar.push((7.5, unit, -1))
        assert [calendar.pop()[1] for _ in range(4)] == [0, 1, 2, 3]

    def test_push_into_the_past_after_pops(self):
        calendar = CalendarQueue()
        calendar.push((100.0, 0))
        assert calendar.pop() == (100.0, 0)
        calendar.push((1.0, 1))  # before the last popped time
        calendar.push((200.0, 2))
        assert calendar.pop() == (1.0, 1)
        assert calendar.pop() == (200.0, 2)

    def test_rejects_non_finite_and_negative_times(self):
        calendar = CalendarQueue()
        for bad in (float("inf"), float("nan"), -1.0):
            with pytest.raises(ConfigurationError):
                calendar.push((bad, 0))

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop()
        assert CalendarQueue().peek() is None

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            CalendarQueue(bucket_width=0.0)
        with pytest.raises(ConfigurationError):
            CalendarQueue(num_buckets=0)


# -------------------------------------------------------------- QuantileSketch


def rank_distance(value: float, sorted_exact: np.ndarray, percentile: float) -> float:
    """How many ranks ``value`` sits from the percentile's target rank.

    ``value`` must be an observed value; duplicates occupy a rank *range*
    and the distance is measured to the nearest end of it.
    """
    n = len(sorted_exact)
    target = 1.0 + percentile / 100.0 * (n - 1)
    low = float(np.searchsorted(sorted_exact, value, side="left")) + 1.0
    high = float(np.searchsorted(sorted_exact, value, side="right"))
    assert low <= high, f"{value} is not an observed value"
    return max(low - target, target - high, 0.0)


class TestQuantileSketch:
    def test_short_stream_is_exact(self):
        """Below the compression threshold every answer is the exact order
        statistic (and matches numpy at whole-rank percentiles)."""
        rng = np.random.default_rng(0)
        data = rng.lognormal(0.0, 1.0, size=149)
        sketch = QuantileSketch()
        for value in data:
            sketch.add(float(value))
        assert sketch.query(0) == float(np.min(data))
        assert sketch.query(100) == float(np.max(data))
        # n = 149 makes p50's target rank integral (rank 75).
        assert sketch.query(50) == float(np.percentile(data, 50))

    @pytest.mark.parametrize("size", [1_000, 20_000])
    @pytest.mark.parametrize("eps", [0.005, 0.02])
    def test_rank_error_bound(self, size, eps):
        rng = np.random.default_rng(7)
        data = rng.lognormal(0.0, 1.5, size=size)
        sketch = QuantileSketch(eps)
        for value in data:
            sketch.add(float(value))
        sorted_exact = np.sort(data)
        for percentile in (1.0, 5.0, 25.0, 50.0, 75.0, 95.0, 99.0):
            answer = sketch.query(percentile)
            assert rank_distance(answer, sorted_exact, percentile) <= (
                sketch.rank_error_bound() + 1.0
            )

    def test_deterministic_and_comparable(self):
        rng = np.random.default_rng(3)
        data = [float(v) for v in rng.exponential(2.0, size=5_000)]
        first, second = QuantileSketch(), QuantileSketch()
        for value in data:
            first.add(value)
        for value in data:
            second.add(value)
        assert first == second
        assert first.query(99) == second.query(99)

    def test_running_moments(self):
        sketch = QuantileSketch()
        values = [3.0, 1.0, 2.0]
        for value in values:
            sketch.add(value)
        assert sketch.count == 3
        assert sketch.mean == pytest.approx(2.0)
        assert sketch.min == 1.0
        assert sketch.max == 3.0

    def test_empty_sketch_answers_zero(self):
        sketch = QuantileSketch()
        assert sketch.query(50) == 0.0
        assert sketch.mean == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuantileSketch(0.0)
        with pytest.raises(ConfigurationError):
            QuantileSketch(0.5)
        with pytest.raises(ConfigurationError):
            QuantileSketch().query(101)


# ------------------------------------------- streaming vs retained equivalence


def _streaming_twin(scenario_builder, seed):
    """Serve one property-suite scenario in both accounting modes."""
    built = scenario_builder(seed)
    trace, retained_server = built[0], built[1]
    streaming_server = scenario_builder(seed)[1]
    streaming_server.retain_records = False
    return trace, retained_server.serve(trace), streaming_server.serve(trace)


def _assert_counters_match(retained, streaming):
    assert streaming.stats is not None
    assert not streaming.completed and not streaming.abandoned
    assert streaming.num_requests == retained.num_requests
    assert streaming.num_offered == retained.num_offered
    assert streaming.num_abandoned == retained.num_abandoned
    assert streaming.num_failed == retained.num_failed
    assert streaming.num_retries == retained.num_retries
    assert streaming.total_energy_joules == retained.total_energy_joules
    assert streaming.makespan_s == retained.makespan_s
    assert streaming.first_arrival_s == retained.first_arrival_s
    # Busy time is a float sum accumulated in a different order per mode,
    # so utilization agrees to the ulp, not bit for bit.
    assert streaming.utilization == pytest.approx(
        retained.utilization, rel=1e-12
    )
    assert streaming.availability == pytest.approx(
        retained.availability, rel=1e-12
    )
    assert streaming.goodput_fraction == retained.goodput_fraction
    assert streaming.slo_attainment == retained.slo_attainment
    assert streaming.mean_batch_size == retained.mean_batch_size
    assert (
        streaming.batch_size_distribution() == retained.batch_size_distribution()
    )
    assert streaming.service_classes() == retained.service_classes()
    assert streaming.mean_response_time_s == pytest.approx(
        retained.mean_response_time_s, rel=1e-12, abs=1e-12
    )
    assert streaming.mean_queueing_delay_s == pytest.approx(
        retained.mean_queueing_delay_s, rel=1e-12, abs=1e-12
    )


def _assert_percentiles_within_rank_bound(retained, streaming):
    if not retained.completed:
        return
    sorted_exact = np.sort(
        [record.response_time_s for record in retained.completed]
    )
    bound = streaming.stats.response.rank_error_bound() + 1.0
    for percentile in (50.0, 95.0, 99.0):
        answer = streaming.response_time_percentile_s(percentile)
        assert rank_distance(answer, sorted_exact, percentile) <= bound


@pytest.mark.parametrize("seed", SEEDS)
class TestStreamingEquivalence:
    def test_counters_match_exactly(self, seed):
        _, retained, streaming = _streaming_twin(random_scenario, seed)
        _assert_counters_match(retained, streaming)

    def test_percentiles_within_rank_bound(self, seed):
        _, retained, streaming = _streaming_twin(random_scenario, seed)
        _assert_percentiles_within_rank_bound(retained, streaming)

    def test_fault_campaign_counters_match(self, seed):
        _, retained, streaming = _streaming_twin(random_fault_scenario, seed)
        _assert_counters_match(retained, streaming)
        _assert_percentiles_within_rank_bound(retained, streaming)
        if retained.failover_delays_s:
            sorted_failover = np.sort(retained.failover_delays_s)
            bound = streaming.stats.failover.rank_error_bound() + 1.0
            answer = streaming.failover_delay_percentile_s(95.0)
            assert rank_distance(answer, sorted_failover, 95.0) <= bound

    def test_streaming_reports_are_reproducible(self, seed):
        """Seeded streaming runs reproduce their whole report, sketches
        included (the sketch is deterministic in its value sequence)."""
        _, _, first = _streaming_twin(random_scenario, seed)
        _, _, second = _streaming_twin(random_scenario, seed)
        assert first == second

    def test_retained_mode_is_the_default_and_identical(self, seed):
        trace, default_server, _ = (
            random_scenario(seed)[0],
            random_scenario(seed)[1],
            None,
        )
        explicit_server = random_scenario(seed)[1]
        assert explicit_server.retain_records is True
        assert default_server.serve(trace) == explicit_server.serve(trace)


class TestStreamingReportSurface:
    def _streaming_report(self):
        trace = poisson_trace(4.0, 30.0, seed=9)
        server = ApplianceServer(
            _FixedLatencyPlatform(0.3),
            num_clusters=2,
            platform_name="solo",
            retain_records=False,
        )
        return server.serve(trace)

    def test_raw_record_accessors_refuse_streaming_mode(self):
        report = self._streaming_report()
        with pytest.raises(ConfigurationError):
            report.batch_gather_delays_s()

    def test_percentile_accessors_answer(self):
        report = self._streaming_report()
        assert report.response_time_percentile_s(99) > 0.0
        assert report.queueing_delay_percentile_s(50) >= 0.0
        assert report.has_slo_requests is False


# ----------------------------------------------------------------- lazy traces


class TestLazyTraces:
    @pytest.mark.parametrize(
        "eager_builder,lazy_builder",
        [
            (
                lambda: poisson_trace(5.0, 40.0, seed=3),
                lambda: poisson_trace(5.0, 40.0, seed=3, lazy=True),
            ),
            (
                lambda: bursty_trace(8.0, 1.0, 50.0, seed=4),
                lambda: bursty_trace(8.0, 1.0, 50.0, seed=4, lazy=True),
            ),
            (
                lambda: diurnal_trace(6.0, 80.0, seed=5),
                lambda: diurnal_trace(6.0, 80.0, seed=5, lazy=True),
            ),
            (
                lambda: constant_trace(0.5, 30),
                lambda: constant_trace(0.5, 30, lazy=True),
            ),
        ],
        ids=["poisson", "bursty", "diurnal", "constant"],
    )
    def test_lazy_equals_eager(self, eager_builder, lazy_builder):
        assert eager_builder() == list(lazy_builder())

    def test_limit_is_the_eager_prefix(self):
        full = poisson_trace(5.0, 40.0, seed=3)
        assert poisson_trace(5.0, 40.0, seed=3, limit=7) == full[:7]
        assert (
            list(poisson_trace(5.0, 40.0, seed=3, limit=7, lazy=True))
            == full[:7]
        )

    def test_limit_validation(self):
        with pytest.raises(ConfigurationError):
            poisson_trace(5.0, 40.0, limit=0)

    def test_lazy_trace_serves_bit_identically(self):
        server = ApplianceServer(
            _FixedLatencyPlatform(0.4), num_clusters=2, platform_name="solo"
        )
        eager_report = server.serve(poisson_trace(3.0, 30.0, seed=6))
        lazy_report = server.serve(poisson_trace(3.0, 30.0, seed=6, lazy=True))
        assert eager_report == lazy_report

    def test_out_of_order_lazy_trace_is_rejected(self):
        workload = Workload(8, 8)
        backwards = iter(
            [
                ServiceRequest(0, 5.0, workload),
                ServiceRequest(1, 1.0, workload),
            ]
        )
        server = ApplianceServer(
            _FixedLatencyPlatform(0.4), num_clusters=1, platform_name="solo"
        )
        with pytest.raises(ConfigurationError, match="non-decreasing"):
            server.serve(backwards)

    def test_out_of_order_list_is_still_sorted(self):
        """Sized traces keep the historical sort-on-entry contract."""
        workload = Workload(8, 8)
        shuffled = [
            ServiceRequest(0, 5.0, workload),
            ServiceRequest(1, 1.0, workload),
        ]
        server = ApplianceServer(
            _FixedLatencyPlatform(0.4), num_clusters=1, platform_name="solo"
        )
        report = server.serve(shuffled)
        assert report.num_requests == 2

    def test_with_service_levels_preserves_laziness(self):
        trace = poisson_trace(5.0, 20.0, seed=1)
        tagged = with_service_levels(iter(trace), service_class="gold")
        assert not isinstance(tagged, list)
        assert [r.service_class for r in tagged] == ["gold"] * len(trace)

    def test_merge_traces_lazy_matches_eager(self):
        first = with_service_levels(
            poisson_trace(3.0, 30.0, seed=1), service_class="a"
        )
        second = with_service_levels(
            poisson_trace(2.0, 30.0, seed=2), service_class="b"
        )
        eager = merge_traces(first, second)
        lazy = merge_traces(iter(first), iter(second))
        assert not isinstance(lazy, list)
        assert eager == list(lazy)

    def test_merge_traces_tie_break_is_pinned_and_identical(self):
        """Ties on arrival time resolve by trace argument order, then order
        within each trace — identically on the eager (stable sort) and lazy
        (heapq.merge) paths, so the two merges are bit-identical."""
        workload = Workload(8, 8)
        first = [
            ServiceRequest(0, 1.0, workload, service_class="a"),
            ServiceRequest(1, 1.0, workload, service_class="a"),
            ServiceRequest(2, 2.0, workload, service_class="a"),
        ]
        second = [
            ServiceRequest(0, 1.0, workload, service_class="b"),
            ServiceRequest(1, 2.0, workload, service_class="b"),
            ServiceRequest(2, 2.0, workload, service_class="b"),
        ]
        eager = merge_traces(first, second)
        lazy = list(merge_traces(iter(first), iter(second)))
        assert eager == lazy
        # At t=1.0 every `first` tie precedes every `second` tie; within a
        # trace, original order survives.  Same again at t=2.0.
        assert [r.service_class for r in eager] == ["a", "a", "b", "a", "b", "b"]
        assert [r.request_id for r in eager] == list(range(6))
        # Argument order is the tie-break, so swapping the inputs swaps the
        # interleave — on both paths, identically.
        swapped = merge_traces(second, first)
        assert [r.service_class for r in swapped] == ["b", "a", "a", "b", "b", "a"]
        assert swapped == list(merge_traces(iter(second), iter(first)))

    def test_streaming_serve_of_lazy_trace_counts_everything(self):
        """End to end: a lazy trace through streaming accounting conserves
        requests without ever materializing records."""
        limit = 2_000
        trace = diurnal_trace(
            6.0, 1e9, period_s=600.0, seed=11, limit=limit, lazy=True
        )
        server = ApplianceServer(
            _FixedLatencyPlatform(0.05),
            num_clusters=4,
            platform_name="solo",
            retain_records=False,
        )
        report = server.serve(trace)
        assert report.num_offered == limit
        assert report.num_requests + report.num_abandoned == limit
        assert not report.completed
        assert math.isfinite(report.response_time_percentile_s(99))
