"""Tests for the TPU baseline model and the hardware spec sheets."""

import pytest

from repro.baselines.specs import (
    DEFAULT_TPU_V3,
    DEFAULT_V100,
    DFX_APPLIANCE_COST,
    GPU_APPLIANCE_COST,
)
from repro.baselines.tpu import TPUBaseline
from repro.errors import ConfigurationError
from repro.model.config import GPT2_345M
from repro.workloads import Workload


class TestSpecs:
    def test_v100_headline_numbers(self):
        assert DEFAULT_V100.memory_bandwidth == pytest.approx(900e9)
        assert DEFAULT_V100.memory_capacity_bytes == 32 * 2**30
        assert DEFAULT_V100.average_power_watts == pytest.approx(47.5)
        assert DEFAULT_V100.unit_price_usd == pytest.approx(11_458)

    def test_cost_sheets_match_table2(self):
        assert GPU_APPLIANCE_COST.num_accelerators == 4
        assert DFX_APPLIANCE_COST.num_accelerators == 4
        assert DFX_APPLIANCE_COST.accelerator_cost_usd == pytest.approx(31_180, rel=0.001)
        saving = GPU_APPLIANCE_COST.accelerator_cost_usd - DFX_APPLIANCE_COST.accelerator_cost_usd
        assert saving == pytest.approx(14_652, rel=0.001)

    def test_tpu_spec_sanity(self):
        assert DEFAULT_TPU_V3.memory_bandwidth > 0
        assert DEFAULT_TPU_V3.average_power_watts > 0


class TestTPUBaseline:
    @pytest.fixture(scope="class")
    def tpu(self):
        return TPUBaseline(GPT2_345M)

    def test_generation_collapse(self, tpu):
        # Fig. 17: the TPU drops from ~675 GFLOP/s (summarization) to
        # ~8 GFLOP/s (generation) — a two-orders-of-magnitude collapse.
        result = tpu.run(Workload(64, 64))
        assert result.summarization_gflops > 20 * result.generation_gflops

    def test_tpu_slower_than_gpu_for_generation(self, tpu):
        from repro.baselines.gpu import GPUAppliance

        gpu = GPUAppliance(GPT2_345M, num_devices=1)
        workload = Workload(64, 64)
        assert tpu.run(workload).latency_ms > gpu.run(workload).latency_ms

    def test_latency_scales_with_output_tokens(self, tpu):
        assert tpu.run(Workload(64, 32)).latency_ms < tpu.run(Workload(64, 64)).latency_ms

    def test_summarization_requires_positive_tokens(self, tpu):
        with pytest.raises(ConfigurationError):
            tpu.summarization_ms(0)

    def test_result_metadata(self, tpu):
        result = tpu.run(Workload(32, 8))
        assert result.platform == "tpu"
        assert result.num_devices == 1
        assert result.total_power_watts == DEFAULT_TPU_V3.average_power_watts
