"""Unit and integration tests for the functional GPT-2 model."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.model.config import GPT2_TEST_TINY
from repro.model.gpt2 import GPT2Model
from repro.model.kv_cache import KVCache
from repro.model.numerics import FP16_DFX, FP16_GPU, FP32_EXACT


class TestForwardShapes:
    def test_logits_shape(self, tiny_model):
        result = tiny_model.forward(np.array([1, 2, 3]))
        assert result.logits.shape == (3, GPT2_TEST_TINY.vocab_size)
        assert result.hidden_states.shape == (3, GPT2_TEST_TINY.n_embd)

    def test_next_token_is_argmax_of_last_position(self, tiny_model):
        result = tiny_model.forward(np.array([5, 6, 7]))
        assert result.next_token_id == int(np.argmax(result.logits[-1]))

    def test_probabilities_sum_to_one(self, tiny_model):
        result = tiny_model.forward(np.array([5, 6, 7]))
        assert float(result.next_token_probabilities.sum()) == pytest.approx(1.0, abs=1e-4)


class TestKVCacheEquivalence:
    """Incremental decoding with the cache must match a full re-run."""

    def test_incremental_matches_full_forward(self, tiny_model):
        tokens = np.array([3, 14, 15, 9, 26])
        full = tiny_model.forward(tokens)

        cache = tiny_model.new_cache()
        tiny_model.forward(tokens[:3], cache)
        tiny_model.forward(tokens[3:4], cache)
        incremental = tiny_model.forward(tokens[4:5], cache)

        np.testing.assert_allclose(
            incremental.logits[-1], full.logits[-1], rtol=1e-4, atol=1e-4
        )
        assert cache.seq_len == len(tokens)

    def test_cache_grows_by_step_size(self, tiny_model):
        cache = tiny_model.new_cache()
        tiny_model.forward(np.array([1, 2, 3, 4]), cache)
        assert cache.seq_len == 4
        tiny_model.forward(np.array([5]), cache)
        assert cache.seq_len == 5


class TestValidation:
    def test_token_out_of_vocab_rejected(self, tiny_model):
        with pytest.raises(ExecutionError):
            tiny_model.forward(np.array([GPT2_TEST_TINY.vocab_size]))

    def test_empty_input_rejected(self, tiny_model):
        with pytest.raises(ExecutionError):
            tiny_model.forward(np.array([], dtype=np.int64))

    def test_context_overflow_rejected(self, tiny_model):
        too_long = np.zeros(GPT2_TEST_TINY.n_positions + 1, dtype=np.int64)
        with pytest.raises(ExecutionError):
            tiny_model.forward(too_long)

    def test_foreign_cache_rejected(self, tiny_model, small_weights):
        foreign_cache = KVCache.empty(small_weights.config)
        with pytest.raises(ExecutionError):
            tiny_model.forward(np.array([1]), foreign_cache)


class TestNumericsModes:
    def test_fp16_pipelines_close_to_fp32(self, tiny_weights):
        tokens = np.array([10, 20, 30])
        fp32 = GPT2Model(tiny_weights, FP32_EXACT).forward(tokens)
        fp16_gpu = GPT2Model(tiny_weights, FP16_GPU).forward(tokens)
        fp16_dfx = GPT2Model(tiny_weights, FP16_DFX).forward(tokens)
        assert fp16_gpu.logits.dtype == np.float16
        np.testing.assert_allclose(
            fp16_gpu.logits[-1].astype(np.float32), fp32.logits[-1], atol=0.05
        )
        np.testing.assert_allclose(
            fp16_dfx.logits[-1].astype(np.float32),
            fp16_gpu.logits[-1].astype(np.float32),
            atol=0.01,
        )

    def test_gpu_and_dfx_pipelines_usually_agree_on_argmax(self, tiny_weights):
        # The paper reports near-identical accuracy; on random contexts the two
        # FP16 pipelines should almost always pick the same token.
        gpu_model = GPT2Model(tiny_weights, FP16_GPU)
        dfx_model = GPT2Model(tiny_weights, FP16_DFX)
        rng = np.random.default_rng(0)
        agreements = 0
        trials = 10
        for _ in range(trials):
            tokens = rng.integers(3, GPT2_TEST_TINY.vocab_size, size=8)
            if gpu_model.forward(tokens).next_token_id == dfx_model.forward(tokens).next_token_id:
                agreements += 1
        assert agreements >= trials - 1

    def test_from_config_constructor(self):
        model = GPT2Model.from_config(GPT2_TEST_TINY, seed=5)
        assert model.config is GPT2_TEST_TINY
        result = model.forward(np.array([1, 2]))
        assert np.all(np.isfinite(result.logits.astype(np.float64)))
