"""Tests for the DFX runtime (functional generation + simulated timing)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.model.config import GPT2_TEST_SMALL, GPT2_TEST_TINY
from repro.model.gpt2 import GPT2Model
from repro.model.numerics import FP16_DFX
from repro.model.weights import generate_weights
from repro.runtime import DFXRuntime
from repro.workloads import Workload


@pytest.fixture(scope="module")
def runtime():
    return DFXRuntime(GPT2_TEST_TINY, num_devices=2, seed=5)


class TestGeneration:
    def test_generation_matches_reference_model(self, runtime):
        reference = GPT2Model(runtime.weights, numerics=FP16_DFX)
        prompt = [11, 22, 33]
        cache = reference.new_cache()
        out = reference.forward(np.asarray(prompt), cache)
        expected = [out.next_token_id]
        for _ in range(3):
            out = reference.forward(np.asarray([expected[-1]]), cache)
            expected.append(out.next_token_id)

        generation = runtime.generate(prompt, max_new_tokens=4)
        assert generation.output_token_ids == expected

    def test_timing_attached_and_consistent_with_workload(self, runtime):
        generation = runtime.generate([1, 2, 3, 4], max_new_tokens=6)
        assert generation.workload == Workload(4, 6)
        assert generation.simulated_latency_ms > 0
        assert generation.simulated_tokens_per_second > 0
        assert generation.timing.platform == "dfx"

    def test_requests_are_independent(self, runtime):
        first = runtime.generate([5, 6, 7], max_new_tokens=3)
        second = runtime.generate([5, 6, 7], max_new_tokens=3)
        assert first.output_token_ids == second.output_token_ids

    def test_generate_text_round_trip(self, runtime):
        generation = runtime.generate_text("hello dfx appliance", max_new_tokens=3)
        assert generation.text is not None
        assert len(generation.output_token_ids) == 3
        assert len(generation.input_token_ids) == 3

    def test_estimate_only_accepts_paper_scale_workloads(self, runtime):
        result = runtime.estimate_only(Workload(64, 64))
        assert result.latency_ms > 0


class TestValidation:
    def test_empty_prompt_rejected(self, runtime):
        with pytest.raises(ExecutionError):
            runtime.generate([], max_new_tokens=2)

    def test_non_positive_new_tokens_rejected(self, runtime):
        with pytest.raises(ExecutionError):
            runtime.generate([1, 2], max_new_tokens=0)

    def test_mismatched_weights_rejected(self):
        wrong_weights = generate_weights(GPT2_TEST_SMALL, seed=0)
        with pytest.raises(ConfigurationError):
            DFXRuntime(GPT2_TEST_TINY, num_devices=2, weights=wrong_weights)
