"""Tests for resource estimation (Fig. 8b / Fig. 13) and SLR floorplanning."""

import pytest

from repro.errors import ResourceExhaustedError
from repro.fpga.floorplan import plan_floorplan
from repro.fpga.resources import (
    CORE_COMPONENTS,
    ResourceUsage,
    TILE_DESIGN_POINTS,
    design_space_resource_sweep,
    estimate_core_resources,
    estimate_mpu,
    mpu_dsp_count,
)
from repro.fpga.u280 import DEFAULT_U280


class TestMPUEstimates:
    def test_dsp_count_formula_matches_paper(self):
        # Sec. V-C: 3 x (d x l) DSPs for the MFU; Fig. 13 reports 3136 for the
        # MPU including the SFU_M operators.
        assert mpu_dsp_count(64, 16) == 3 * 64 * 16 + 4 * 16
        assert estimate_mpu(64, 16).dsp == 3136

    def test_mpu_resources_anchor_to_fig13(self):
        usage = estimate_mpu(64, 16)
        assert usage.lut == pytest.approx(170_000, rel=0.05)
        assert usage.ff == pytest.approx(381_000, rel=0.12)

    def test_per_lane_hardware_grows_with_l(self):
        # Fig. 8b: with the MAC count fixed, larger l needs more resources.
        wide = estimate_mpu(16, 64)
        narrow = estimate_mpu(64, 16)
        assert wide.lut > narrow.lut
        assert wide.dsp > narrow.dsp

    def test_d64_l16_is_cheapest_of_the_best_performers(self):
        # The paper picks d=64 because among the equally fast points it uses
        # the least hardware.
        candidates = {(16, 64), (32, 32), (64, 16)}
        luts = {point: estimate_mpu(*point).lut for point in candidates}
        assert min(luts, key=luts.get) == (64, 16)


class TestCoreReport:
    def test_all_components_present(self):
        report = estimate_core_resources()
        assert set(report.components) == set(CORE_COMPONENTS)

    def test_totals_match_fig13_within_tolerance(self):
        report = estimate_core_resources()
        total = report.total
        assert total.lut == pytest.approx(520_000, rel=0.05)
        assert total.dsp == pytest.approx(3533, rel=0.02)
        assert total.bram_36k == pytest.approx(1192, rel=0.10)
        assert total.uram == pytest.approx(104, rel=0.05)

    def test_core_fits_the_device(self):
        report = estimate_core_resources()
        report.check_fits()
        utilization = report.utilization()["total"]
        assert all(value < 1.0 for value in utilization.values())
        assert utilization["lut"] == pytest.approx(0.40, abs=0.05)

    def test_oversized_design_rejected(self):
        report = estimate_core_resources(d=64, l=256)
        with pytest.raises(ResourceExhaustedError):
            report.check_fits()

    def test_design_space_sweep_covers_all_points(self):
        sweep = design_space_resource_sweep()
        assert set(sweep) == set(TILE_DESIGN_POINTS)

    def test_resource_usage_addition(self):
        total = ResourceUsage(lut=1, dsp=2) + ResourceUsage(lut=3, dsp=4, bram_36k=1)
        assert total.lut == 4 and total.dsp == 6 and total.bram_36k == 1


class TestFloorplan:
    def test_default_design_is_routable(self):
        result = plan_floorplan(d=64, l=16)
        assert result.feasible
        result.check_feasible()

    def test_dma_and_some_lanes_live_in_slr0(self):
        result = plan_floorplan()
        assert "dma" in result.assignments[0].components
        assert result.lanes_in_slr0 > 0

    def test_lane_counts_cover_all_lanes(self):
        result = plan_floorplan(d=64, l=16)
        assert sum(slr.mpu_lanes for slr in result.assignments) == 16

    def test_wider_lane_designs_need_more_crossings(self):
        narrow = plan_floorplan(d=64, l=16)
        wide = plan_floorplan(d=16, l=64)
        assert wide.crossing_signals >= narrow.crossing_signals

    def test_sll_budget_from_spec(self):
        result = plan_floorplan()
        assert result.sll_budget == DEFAULT_U280.sll_per_crossing * 2
