"""Tests for sync accounting and the pipelined-parallelism baseline."""

import pytest

from repro.errors import PartitioningError
from repro.model.config import GPT2_1_5B, GPT2_345M
from repro.parallel.partitioner import build_partition_plan
from repro.parallel.pipeline import (
    build_pipeline_plan,
    intra_layer_token_latency_ms,
    pipelined_token_latency_ms,
)
from repro.parallel.sync import layer_sync_schedule, sync_bytes_per_token, syncs_per_token
from repro.results import PHASE_FFN, PHASE_SELF_ATTENTION


class TestSyncSchedule:
    def test_four_syncs_per_layer(self):
        plan = build_partition_plan(GPT2_1_5B, 4)
        schedule = layer_sync_schedule(plan)
        assert len(schedule) == 4
        assert [point.phase for point in schedule] == [
            PHASE_SELF_ATTENTION, PHASE_SELF_ATTENTION, PHASE_FFN, PHASE_FFN,
        ]

    def test_total_syncs_per_token(self):
        plan = build_partition_plan(GPT2_1_5B, 4)
        assert syncs_per_token(plan) == 4 * GPT2_1_5B.n_layer

    def test_payload_sizes(self):
        plan = build_partition_plan(GPT2_1_5B, 4)
        schedule = layer_sync_schedule(plan)
        assert schedule[0].payload_bytes() == GPT2_1_5B.n_embd * 2
        assert schedule[2].payload_bytes() == GPT2_1_5B.ffn_dim * 2
        assert schedule[0].per_device_bytes(4) == GPT2_1_5B.n_embd * 2 // 4

    def test_single_device_moves_no_bytes(self):
        plan = build_partition_plan(GPT2_1_5B, 1)
        assert sync_bytes_per_token(plan) == 0

    def test_sync_bytes_grow_with_device_count(self):
        two = sync_bytes_per_token(build_partition_plan(GPT2_1_5B, 2))
        four = sync_bytes_per_token(build_partition_plan(GPT2_1_5B, 4))
        assert four > two > 0


class TestPipelinePlan:
    def test_stages_cover_all_layers(self):
        plan = build_pipeline_plan(GPT2_345M, 4)
        assert sum(stage.num_layers for stage in plan.stages) == GPT2_345M.n_layer
        assert plan.stage_for_layer(0).device_id == 0
        assert plan.stage_for_layer(GPT2_345M.n_layer - 1).device_id == 3

    def test_uneven_layer_counts_distributed(self):
        plan = build_pipeline_plan(GPT2_345M.scaled(n_layer=10), 4)
        assert [stage.num_layers for stage in plan.stages] == [3, 3, 2, 2]

    def test_too_many_stages_rejected(self):
        with pytest.raises(PartitioningError):
            build_pipeline_plan(GPT2_345M.scaled(n_layer=2), 4)


class TestParallelismComparison:
    """Reproduces the paper's argument for intra-layer over pipelined parallelism."""

    def test_pipelining_does_not_reduce_token_latency(self):
        single_layer_ms = 0.1
        pipelined = pipelined_token_latency_ms(single_layer_ms, GPT2_1_5B, 4, 0.01)
        single_device = GPT2_1_5B.n_layer * single_layer_ms
        assert pipelined >= single_device

    def test_intra_layer_reduces_token_latency(self):
        single_layer_ms = 0.1
        intra = intra_layer_token_latency_ms(single_layer_ms, GPT2_1_5B, 4,
                                             sync_latency_ms=0.002)
        single_device = GPT2_1_5B.n_layer * single_layer_ms
        assert intra < single_device
        assert intra < pipelined_token_latency_ms(single_layer_ms, GPT2_1_5B, 4, 0.01)

    def test_intra_layer_gain_shrinks_when_sync_is_expensive(self):
        cheap_sync = intra_layer_token_latency_ms(0.1, GPT2_1_5B, 4, 0.001)
        pricey_sync = intra_layer_token_latency_ms(0.1, GPT2_1_5B, 4, 0.01)
        assert pricey_sync > cheap_sync

    def test_single_device_has_no_sync_overhead(self):
        base = intra_layer_token_latency_ms(0.1, GPT2_1_5B, 1, sync_latency_ms=10.0)
        assert base == pytest.approx(GPT2_1_5B.n_layer * 0.1)
