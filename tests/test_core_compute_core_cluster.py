"""Tests for the compute core, device capacity checks, and the cluster."""

import pytest

from repro.core.cluster import DFXCluster
from repro.core.compute_core import ComputeCore
from repro.core.device import FPGADevice
from repro.errors import ResourceExhaustedError
from repro.model.config import GPT2_1_5B, GPT2_345M
from repro.parallel.partitioner import build_partition_plan


@pytest.fixture(scope="module")
def core_1_5b():
    plan = build_partition_plan(GPT2_1_5B, 4)
    return ComputeCore(GPT2_1_5B, plan, device_id=0)


class TestComputeCore:
    def test_layer_timing_is_cached(self, core_1_5b):
        first = core_1_5b.layer_timing(1, 10)
        second = core_1_5b.layer_timing(1, 10)
        assert first is second

    def test_longer_context_costs_more(self, core_1_5b):
        short = core_1_5b.layer_timing(1, 8).total_cycles
        long = core_1_5b.layer_timing(1, 512).total_cycles
        assert long > short

    def test_token_step_includes_all_layers(self, core_1_5b):
        step = core_1_5b.token_step(1, 32)
        layer = core_1_5b.layer_timing(1, 32)
        assert step.timing.total_cycles > GPT2_1_5B.n_layer * 0.95 * layer.total_cycles

    def test_token_step_flops_match_partitioned_model_size(self, core_1_5b):
        # Per device, a generation step is dominated by 2 * (params / devices)
        # multiply-accumulate FLOPs.
        step = core_1_5b.token_step(1, 1)
        dense_flops = 2 * GPT2_1_5B.total_parameter_count() / 4
        assert step.flops_per_device == pytest.approx(dense_flops, rel=0.15)

    def test_token_step_seconds_in_expected_range(self, core_1_5b):
        # Paper Fig. 14: ~6.9 ms per token on the 1.5B model with 4 FPGAs.
        seconds = core_1_5b.token_step_seconds(1, 64)
        assert 0.004 < seconds < 0.010


class TestDeviceCapacity:
    def test_1_5b_on_four_devices_fits(self):
        plan = build_partition_plan(GPT2_1_5B, 4)
        device = FPGADevice(GPT2_1_5B, plan, 0)
        footprint = device.check_capacity()
        assert footprint.hbm_bytes < 8 * 2**30

    def test_footprint_components(self):
        plan = build_partition_plan(GPT2_345M, 1)
        device = FPGADevice(GPT2_345M, plan, 0)
        footprint = device.memory_footprint(max_tokens=256)
        assert footprint.weight_bytes > 0
        assert footprint.kv_cache_bytes > 0
        assert footprint.hbm_bytes == footprint.weight_bytes + footprint.kv_cache_bytes
        assert footprint.ddr_bytes > 0

    def test_oversized_model_rejected(self):
        huge = GPT2_1_5B.scaled(name="gpt2-huge", n_embd=4096, n_head=32, n_layer=64)
        plan = build_partition_plan(huge, 1)
        with pytest.raises(ResourceExhaustedError):
            FPGADevice(huge, plan, 0).check_capacity()


class TestCluster:
    def test_cluster_step_matches_representative_core(self):
        cluster = DFXCluster(GPT2_345M, num_devices=2)
        assert cluster.token_step(1, 16).timing.total_cycles == pytest.approx(
            cluster.core.token_step(1, 16).timing.total_cycles
        )

    def test_more_devices_reduce_step_time(self):
        one = DFXCluster(GPT2_345M, num_devices=1).token_step_seconds(1, 64)
        four = DFXCluster(GPT2_345M, num_devices=4).token_step_seconds(1, 64)
        assert four < one
        # ...but not perfectly linearly (sync + non-parallel vector work).
        assert four > one / 4

    def test_power_scales_with_devices(self):
        assert DFXCluster(GPT2_345M, 4).total_power_watts() == pytest.approx(180.0)
        assert DFXCluster(GPT2_345M, 1).total_power_watts() == pytest.approx(45.0)

    def test_cluster_flops_scale_with_devices(self):
        cluster = DFXCluster(GPT2_345M, num_devices=2)
        per_device = cluster.token_step(1, 4).flops_per_device
        assert cluster.cluster_flops_per_step(1, 4) == pytest.approx(2 * per_device)


class TestBatchedTokenStep:
    def test_batch_one_is_exactly_the_single_step(self, core_1_5b):
        single = core_1_5b.token_step(rows=1, past_length=16)
        batched = core_1_5b.batched_token_step(batch=1, past_length=16)
        assert batched.timing.total_cycles == single.timing.total_cycles
        assert batched.flops_per_device == single.flops_per_device

    def test_cohort_step_amortizes_the_weight_stream(self, core_1_5b):
        single = core_1_5b.token_step(rows=1, past_length=16).timing.total_cycles
        for batch in (2, 4, 8):
            cohort = core_1_5b.batched_token_step(batch, 16).timing.total_cycles
            # One cohort step costs more than one stream's step but far less
            # than running the batch sequentially.
            assert single < cohort < batch * single

    def test_per_stream_kv_work_still_scales_with_batch(self, core_1_5b):
        shallow = core_1_5b.batched_token_step(8, past_length=8)
        deep = core_1_5b.batched_token_step(8, past_length=512)
        assert deep.timing.total_cycles > shallow.timing.total_cycles

    def test_cluster_delegates_batched_steps(self):
        plan_config = GPT2_345M
        cluster = DFXCluster(plan_config, num_devices=4)
        step = cluster.batched_token_step(4, 16)
        assert step.rows == 4
        assert step.timing.total_cycles == (
            cluster.core.batched_token_step(4, 16).timing.total_cycles
        )
        assert cluster.batched_token_step_seconds(4, 16) > 0
