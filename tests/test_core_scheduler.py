"""Tests for the scoreboard, register-file accounting, and the timing scheduler."""

import pytest

from repro.core.calibration import DEFAULT_CALIBRATION
from repro.core.dma import DMAModel
from repro.core.mpu import MPUModel
from repro.core.register_file import estimate_register_usage
from repro.core.router import RouterModel
from repro.core.scheduler import TimingScheduler
from repro.core.scoreboard import Scoreboard
from repro.core.vpu import VPUModel
from repro.isa.compiler import DFXCompiler
from repro.isa.instructions import DMAInstruction, MatrixInstruction, VectorInstruction
from repro.isa.opcodes import DMAOpcode, MatrixOpcode, VectorOpcode
from repro.isa.program import Program
from repro.model.config import GPT2_1_5B, GPT2_TEST_TINY
from repro.parallel.partitioner import build_partition_plan
from repro.results import PHASE_SYNC


def _scheduler(num_devices=4):
    return TimingScheduler(
        mpu=MPUModel(), vpu=VPUModel(), dma=DMAModel(),
        router=RouterModel(num_devices=num_devices),
    )


class TestScoreboard:
    def test_unknown_buffers_are_always_ready(self):
        assert Scoreboard().ready_time(["w_ffn1", "bias"]) == 0.0

    def test_ready_time_is_max_over_sources(self):
        board = Scoreboard()
        board.mark_written(["a"], 10.0)
        board.mark_written(["b"], 25.0)
        assert board.ready_time(["a", "b"]) == 25.0

    def test_rewrite_keeps_latest_time(self):
        board = Scoreboard()
        board.mark_written(["a"], 30.0)
        board.mark_written(["a"], 10.0)
        assert board.ready_time(["a"]) == 30.0

    def test_live_in_marking(self):
        board = Scoreboard()
        board.mark_live_in(["hidden"])
        assert board.ready_time(["hidden"]) == 0.0
        assert "hidden" in board.snapshot()


class TestSchedulerBehaviour:
    def test_dependent_instructions_serialize(self):
        program = Program(name="chain", inputs=("x",))
        program.extend([
            VectorInstruction(VectorOpcode.MUL, dst="a", src1="x", src2="x", length=1024),
            VectorInstruction(VectorOpcode.ADD, dst="b", src1="a", src2="x", length=1024),
        ])
        timing = _scheduler().time_program(program, keep_traces=True)
        first, second = timing.traces
        assert second.start_cycle >= first.finish_cycle

    def test_independent_units_overlap(self):
        # A DMA prefetch and an unrelated vector op should overlap in time.
        program = Program(name="overlap", inputs=("x",))
        program.extend([
            DMAInstruction(DMAOpcode.STORE_KV, dst="kv", src="x", size_bytes=500_000),
            VectorInstruction(VectorOpcode.MUL, dst="y", src1="x", src2="x", length=6144),
        ])
        timing = _scheduler().time_program(program, keep_traces=True)
        dma_trace, vpu_trace = timing.traces
        assert vpu_trace.start_cycle < dma_trace.finish_cycle
        assert timing.total_cycles < (
            dma_trace.occupancy_cycles + vpu_trace.occupancy_cycles
        ) * 1.5

    def test_same_unit_instructions_queue(self):
        conv = MatrixInstruction(MatrixOpcode.CONV1D, dst="a", input_operand="x",
                                 weight_operand="w1", rows=1, in_dim=1536, out_dim=384)
        conv2 = MatrixInstruction(MatrixOpcode.CONV1D, dst="b", input_operand="x",
                                  weight_operand="w2", rows=1, in_dim=1536, out_dim=384)
        program = Program(name="queue", inputs=("x",))
        program.extend([conv, conv2])
        timing = _scheduler().time_program(program, keep_traces=True)
        assert timing.traces[1].start_cycle >= timing.traces[0].finish_cycle

    def test_cycles_by_tag_and_unit_account_all_occupancy(self):
        plan = build_partition_plan(GPT2_1_5B, 4)
        program = DFXCompiler(GPT2_1_5B, plan, 0).compile_decoder_layer(1, 16)
        timing = _scheduler().time_program(program)
        assert sum(timing.cycles_by_tag.values()) == pytest.approx(
            sum(timing.cycles_by_unit.values())
        )
        assert PHASE_SYNC in timing.cycles_by_tag

    def test_breakdown_fractions_normalized(self):
        plan = build_partition_plan(GPT2_1_5B, 4)
        program = DFXCompiler(GPT2_1_5B, plan, 0).compile_decoder_layer(1, 16)
        fractions = _scheduler().time_program(program).breakdown_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_scaled_and_merged_timings(self):
        plan = build_partition_plan(GPT2_TEST_TINY, 2)
        program = DFXCompiler(GPT2_TEST_TINY, plan, 0).compile_decoder_layer(1, 0)
        timing = _scheduler(2).time_program(program)
        doubled = timing.scaled(2.0)
        assert doubled.total_cycles == pytest.approx(2 * timing.total_cycles)
        merged = timing.merged(timing)
        assert merged.total_cycles == pytest.approx(2 * timing.total_cycles)
        for tag, value in timing.cycles_by_tag.items():
            assert merged.cycles_by_tag[tag] == pytest.approx(2 * value)

    def test_seconds_conversion(self):
        plan = build_partition_plan(GPT2_TEST_TINY, 2)
        program = DFXCompiler(GPT2_TEST_TINY, plan, 0).compile_decoder_layer(1, 0)
        timing = _scheduler(2).time_program(program)
        assert timing.seconds(200e6) == pytest.approx(timing.total_cycles / 200e6)


class TestRegisterUsage:
    def test_generation_step_fits_register_file(self):
        plan = build_partition_plan(GPT2_1_5B, 4)
        program = DFXCompiler(GPT2_1_5B, plan, 0).compile_decoder_layer(1, 64)
        usage = estimate_register_usage(program)
        assert usage.peak_vector_words > 0
        assert usage.fits()

    def test_long_context_prompt_exceeds_single_token_budget(self):
        # Summarization over a long prompt holds far more live state; the
        # hardware streams it via the DMA, so the single-token register budget
        # is expected to be exceeded by the conservative estimate.
        plan = build_partition_plan(GPT2_1_5B, 4)
        program = DFXCompiler(GPT2_1_5B, plan, 0).compile_decoder_layer(128, 0)
        usage = estimate_register_usage(program)
        assert usage.peak_vector_words > estimate_register_usage(
            DFXCompiler(GPT2_1_5B, plan, 0).compile_decoder_layer(1, 0)
        ).peak_vector_words
