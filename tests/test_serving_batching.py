"""Tests for the batch-formation layer of the serving simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    ApplianceFleet,
    ApplianceServer,
    BATCH_POLICIES,
    ContinuousBatching,
    DynamicBatching,
    FleetMember,
    GPUBatchCostModel,
    LatencyOracle,
    NoBatching,
    ServerUnit,
    ServiceRequest,
    constant_trace,
    dominant_workload,
    make_batch_policy,
    poisson_trace,
    simulate,
)
from repro.serving.schedulers import (
    FIFOScheduler,
    SchedulingPolicy,
    make_scheduler,
)
from repro.workloads import Workload
from serving_doubles import (
    BatchableTokenPlatform as _BatchableTokenPlatform,
    FixedLatencyPlatform as _FixedLatencyPlatform,
)


class TestPolicyRegistry:
    def test_registry_names(self):
        assert set(BATCH_POLICIES) == {"none", "dynamic", "continuous"}

    def test_make_batch_policy_resolution(self):
        assert isinstance(make_batch_policy(None), NoBatching)
        assert isinstance(make_batch_policy("none"), NoBatching)
        assert isinstance(make_batch_policy("dynamic"), DynamicBatching)
        policy = DynamicBatching(4, 1.0)
        assert make_batch_policy(policy) is policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_batch_policy("static")
        with pytest.raises(ConfigurationError):
            make_batch_policy(42)

    def test_invalid_policy_parameters(self):
        with pytest.raises(ConfigurationError):
            DynamicBatching(max_batch_size=0)
        with pytest.raises(ConfigurationError):
            DynamicBatching(timeout_s=-1.0)
        with pytest.raises(ConfigurationError):
            ContinuousBatching(max_batch_size=0)

    def test_capacity_is_min_of_policy_and_unit(self):
        policy = DynamicBatching(max_batch_size=8)
        assert policy.capacity(4) == 4
        assert policy.capacity(16) == 8
        assert policy.capacity(1) == 1


class TestBatchCostModel:
    def test_dominant_workload(self):
        shape = dominant_workload([Workload(10, 5), Workload(2, 50)])
        assert shape == Workload(10, 50)
        with pytest.raises(ConfigurationError):
            dominant_workload([])

    def test_requires_the_gpu_batching_interface(self):
        with pytest.raises(ConfigurationError):
            GPUBatchCostModel(_FixedLatencyPlatform(1.0))

    def test_batch_priced_at_dominant_shape(self):
        platform = _BatchableTokenPlatform(fixed_ms_per_token=100.0,
                                           marginal_ms_per_token=10.0)
        costs = GPUBatchCostModel(platform)
        workloads = [Workload(1, 10), Workload(1, 4)]
        expected_ms = platform.batched_request_latency_ms(Workload(1, 10), 2)
        assert costs.batch_latency_s(workloads) == pytest.approx(expected_ms / 1e3)

    def test_batch_energy_is_power_times_batch_wall_clock(self):
        # The appliance draws its full power for the batch's own wall
        # clock (the estimate the simulator pairs this call with).
        platform = _BatchableTokenPlatform(power_watts=50.0)
        costs = GPUBatchCostModel(platform)
        workloads = [Workload(1, 10), Workload(1, 4)]
        latency_s = costs.batch_latency_s(workloads)
        assert costs.batch_energy_joules(workloads, latency_s) == pytest.approx(
            50.0 * latency_s
        )

    def test_continuous_energy_shared_by_concurrency(self):
        platform = _BatchableTokenPlatform(power_watts=50.0)
        costs = GPUBatchCostModel(platform)
        alone = costs.continuous_energy_joules(Workload(1, 10), 1, 2.0)
        shared = costs.continuous_energy_joules(Workload(1, 10), 4, 2.0)
        assert shared == pytest.approx(alone / 4)


def _batched_server(max_batch_size=4, timeout_s=10.0, num_clusters=1,
                    platform=None, policy=None):
    platform = platform or _BatchableTokenPlatform(
        fixed_ms_per_token=1000.0, marginal_ms_per_token=100.0
    )
    return ApplianceServer(
        platform,
        num_clusters,
        "batchable",
        batch_policy=policy or DynamicBatching(max_batch_size, timeout_s),
        max_batch_size=max_batch_size,
    )


class TestDynamicBatching:
    def test_size_trigger_forms_full_batches(self):
        # 8 simultaneous arrivals, batch capacity 4, generous timeout: two
        # full batches dispatch back to back without waiting for the timer.
        report = _batched_server(max_batch_size=4, timeout_s=100.0).serve(
            constant_trace(0.0, 8, Workload(1, 1))
        )
        assert report.num_requests == 8
        assert report.batch_policy == "dynamic"
        assert report.batch_size_distribution() == {4: 2}
        assert report.num_batches == 2
        assert report.mean_batch_size == pytest.approx(4.0)
        # Members of one batch start and finish together.
        for dispatch in report.iter_dispatches():
            members = [c for c in report.completed if c.batch_id == dispatch.batch_id]
            assert len(members) == 4
            assert len({m.start_time_s for m in members}) == 1
            assert len({m.finish_time_s for m in members}) == 1

    def test_timeout_trigger_flushes_partial_batch(self):
        # Two arrivals then silence: nothing fills the batch, so the flush
        # timer must wake the loop and dispatch a partial batch at
        # first-arrival + timeout even with no further events.
        trace = [
            ServiceRequest(0, 0.0, Workload(1, 1)),
            ServiceRequest(1, 0.3, Workload(1, 1)),
        ]
        report = _batched_server(max_batch_size=4, timeout_s=2.0).serve(trace)
        assert report.num_requests == 2
        assert report.batch_size_distribution() == {2: 1}
        starts = {c.request.request_id: c.start_time_s for c in report.completed}
        assert starts[0] == pytest.approx(2.0)
        assert starts[1] == pytest.approx(2.0)
        assert report.mean_batch_gather_delay_s == pytest.approx(2.0)
        assert report.batch_gather_delay_percentile_s(50) == pytest.approx(2.0)

    def test_zero_timeout_is_greedy_batching(self):
        # timeout 0 never holds: the first request dispatches alone, and the
        # three requests that queue behind it leave as one batch.
        trace = constant_trace(0.1, 4, Workload(1, 1))
        report = _batched_server(max_batch_size=4, timeout_s=0.0).serve(trace)
        assert report.num_requests == 4
        assert report.batch_size_distribution() == {1: 1, 3: 1}

    def test_batch_members_slow_each_other_down(self):
        # A gathered batch runs at the dominant shape and batched rate, so a
        # batched request is slower than it would be alone — the latency
        # price of batching.
        platform = _BatchableTokenPlatform(fixed_ms_per_token=1000.0,
                                           marginal_ms_per_token=100.0)
        alone = ApplianceServer(platform, 1, "batchable").serve(
            [ServiceRequest(0, 0.0, Workload(1, 1))]
        )
        batched = _batched_server(max_batch_size=2, timeout_s=100.0,
                                  platform=platform).serve(
            [ServiceRequest(0, 0.0, Workload(1, 1)),
             ServiceRequest(1, 0.0, Workload(1, 1))]
        )
        assert batched.completed[0].service_time_s > alone.completed[0].service_time_s
        # ...but the batch of 2 finishes earlier than 2 serial requests.
        assert batched.makespan_s < 2 * alone.completed[0].service_time_s

    def test_batching_raises_throughput_under_backlog(self):
        platform = _BatchableTokenPlatform(fixed_ms_per_token=1000.0,
                                           marginal_ms_per_token=50.0)
        trace = constant_trace(0.0, 16, Workload(1, 2))
        unbatched = ApplianceServer(platform, 1, "batchable").serve(trace)
        batched = _batched_server(max_batch_size=8, timeout_s=0.0,
                                  platform=platform).serve(trace)
        assert (
            batched.output_tokens_per_second
            > 2 * unbatched.output_tokens_per_second
        )

    def test_utilization_counts_each_batch_once(self):
        report = _batched_server(max_batch_size=4, timeout_s=100.0).serve(
            constant_trace(0.0, 4, Workload(1, 1))
        )
        # One batch spans the whole busy window: utilization is exactly 1,
        # not 4 (the old per-request sum would overcount members).
        assert report.utilization == pytest.approx(1.0)
        assert report.utilization_by_appliance()["batchable"] == pytest.approx(1.0)


class TestContinuousBatching:
    def test_requests_admitted_immediately_into_slots(self):
        report = _batched_server(
            max_batch_size=4, policy=ContinuousBatching(4)
        ).serve(constant_trace(0.0, 4, Workload(1, 1)))
        assert report.batch_policy == "continuous"
        assert report.num_requests == 4
        # No gather wait: every request starts at its arrival.
        assert all(c.queueing_delay_s == pytest.approx(0.0) for c in report.completed)
        # Recorded batch sizes are the decode occupancy at admission.
        assert report.batch_size_distribution() == {1: 1, 2: 1, 3: 1, 4: 1}

    def test_admission_time_pricing_without_reprice(self):
        # Legacy approximation (reprice=False): each admission is priced
        # once at the concurrency it finds and never revisited.
        report = _batched_server(
            max_batch_size=2, policy=ContinuousBatching(2, reprice=False)
        ).serve(constant_trace(0.0, 2, Workload(1, 1)))
        by_id = {c.request.request_id: c for c in report.completed}
        # First admission decodes alone (batch-1 rate); the second shares
        # the unit and pays the concurrency-2 step time.
        assert by_id[0].service_time_s == pytest.approx(1.0)
        assert by_id[1].service_time_s == pytest.approx(1.1)

    def test_slots_never_exceed_max_batch_size(self):
        report = _batched_server(
            max_batch_size=2, policy=ContinuousBatching(2)
        ).serve(constant_trace(0.0, 3, Workload(1, 1)))
        # The third request must wait for a slot.
        waits = sorted(c.queueing_delay_s for c in report.completed)
        assert waits[0] == waits[1] == pytest.approx(0.0)
        assert waits[2] > 0.0


class TestContinuousRepricing:
    """Default continuous mode re-prices in-flight decode streams whenever
    the unit's occupancy changes (the fix for the admission-time-only
    approximation the old docstring disclaimed)."""

    # _BatchableTokenPlatform service time for Workload(1, n) at
    # concurrency L: n * (1.0 + (L - 1) * 0.1) seconds.

    def test_new_admission_slows_inflight_stream(self):
        report = _batched_server(
            max_batch_size=2, policy=ContinuousBatching(2)
        ).serve(constant_trace(0.0, 2, Workload(1, 1)))
        by_id = {c.request.request_id: c for c in report.completed}
        # Request 0 is admitted alone, but request 1 lands at the same
        # instant: both streams decode the whole way at concurrency 2.
        assert by_id[0].service_time_s == pytest.approx(1.1)
        assert by_id[1].service_time_s == pytest.approx(1.1)
        # Recorded batch sizes stay the occupancy at admission.
        assert report.batch_size_distribution() == {1: 1, 2: 1}

    def test_departure_speeds_up_the_survivor(self):
        # Request 0 (1 token) decodes alone for 0.5 s, shares the unit
        # until it finishes, then request 1 (2 tokens) speeds back up:
        #   req0: 0.5 s alone (half done) + 0.5 * 1.1 shared = 1.05 s
        #   req1: 0.55 of 2.2 shared (quarter done) + 0.75 * 2.0 alone
        #         -> finishes at 1.05 + 1.5 = 2.55, service 2.05 s
        # Admission-time pricing would have charged request 1 the full
        # 2.2 s as if the neighbour never left.
        trace = [
            ServiceRequest(0, 0.0, Workload(1, 1)),
            ServiceRequest(1, 0.5, Workload(1, 2)),
        ]
        report = _batched_server(
            max_batch_size=2, policy=ContinuousBatching(2)
        ).serve(trace)
        by_id = {c.request.request_id: c for c in report.completed}
        assert by_id[0].service_time_s == pytest.approx(1.05)
        assert by_id[1].service_time_s == pytest.approx(2.05)
        assert by_id[1].service_time_s < 2.2  # faster than never re-pricing

    def test_records_keep_dispatch_order_and_admission_start(self):
        trace = [
            ServiceRequest(0, 0.0, Workload(1, 4)),
            ServiceRequest(1, 0.1, Workload(1, 1)),
        ]
        report = _batched_server(
            max_batch_size=2, policy=ContinuousBatching(2)
        ).serve(trace)
        # The short request finishes first but the completed list stays in
        # dispatch order (the provisional record is sealed in place).
        assert [c.request.request_id for c in report.completed] == [0, 1]
        assert report.completed[0].finish_time_s > report.completed[1].finish_time_s
        assert report.completed[0].start_time_s == pytest.approx(0.0)
        assert report.completed[1].start_time_s == pytest.approx(0.1)

    def test_energy_integrates_to_power_times_busy_time(self):
        # Per-segment billing (1/concurrency of the draw while that
        # concurrency held) must integrate to appliance power x busy time
        # while the unit continuously decodes.
        platform = _BatchableTokenPlatform(
            fixed_ms_per_token=1000.0, marginal_ms_per_token=100.0,
            power_watts=50.0,
        )
        report = _batched_server(
            max_batch_size=2, policy=ContinuousBatching(2), platform=platform
        ).serve(constant_trace(0.0, 2, Workload(1, 1)))
        assert report.makespan_s == pytest.approx(1.1)
        assert report.total_energy_joules == pytest.approx(50.0 * 1.1)

    def test_reprice_matches_legacy_when_occupancy_never_changes(self):
        # A lone stream is never re-priced, so both modes agree exactly.
        trace = [ServiceRequest(0, 0.0, Workload(1, 3))]
        legacy = _batched_server(
            max_batch_size=4, policy=ContinuousBatching(4, reprice=False)
        ).serve(trace)
        repriced = _batched_server(
            max_batch_size=4, policy=ContinuousBatching(4)
        ).serve(trace)
        assert repriced.completed == legacy.completed
        assert repriced.total_energy_joules == pytest.approx(
            legacy.total_energy_joules
        )


class TestHoldWithoutTimer:
    def test_size_only_policy_without_flush_terminates(self):
        # Regression: the base flush_at must mean "never" — a minimal
        # subclass that only implements ready() (holds until the batch
        # fills) must not hang the event loop; the never-filled batch is
        # accounted as unserved at end of trace.
        class SizeOnly(DynamicBatching):
            name = "size-only"

            def ready(self, now, oldest_arrival_s, queued, capacity):
                return queued >= capacity

            def flush_at(self, oldest_arrival_s):
                return super(DynamicBatching, self).flush_at(oldest_arrival_s)

        report = _batched_server(
            max_batch_size=4, policy=SizeOnly(4)
        ).serve(constant_trace(0.1, 2, Workload(1, 1)))
        assert report.num_requests == 0
        assert report.num_abandoned == 2
        assert all(a.reason == "unserved" for a in report.abandoned)


class TestBatchingValidation:
    def test_appliance_server_rejects_unbatchable_platform(self):
        with pytest.raises(ConfigurationError):
            ApplianceServer(_FixedLatencyPlatform(1.0), max_batch_size=2)

    def test_batch_capacity_derived_from_policy(self):
        # Regression: batch_policy="dynamic" with the default capacity used
        # to clamp every unit to batch size 1 and silently serve unbatched
        # while the report claimed the dynamic policy ran.
        platform = _BatchableTokenPlatform(fixed_ms_per_token=1000.0)
        server = ApplianceServer(
            platform, 1, "batchable",
            batch_policy=DynamicBatching(4, timeout_s=100.0),
        )
        assert server.max_batch_size == 4
        report = server.serve(constant_trace(0.0, 4, Workload(1, 1)))
        assert report.batch_size_distribution() == {4: 1}

    def test_derived_capacity_requires_batchable_platform(self):
        # Deriving capacity from a batching policy must surface the missing
        # batching interface instead of silently running unbatched.
        with pytest.raises(ConfigurationError):
            ApplianceServer(_FixedLatencyPlatform(1.0), batch_policy="dynamic")

    def test_appliance_server_rejects_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            ApplianceServer(_FixedLatencyPlatform(1.0), max_batch_size=0)

    def test_simulate_rejects_batch_units_without_costs(self):
        oracle = LatencyOracle(_FixedLatencyPlatform(1.0))
        units = [ServerUnit(unit_id=0, appliance="a", oracle=oracle,
                            max_batch_size=4)]
        with pytest.raises(ConfigurationError):
            simulate(units, constant_trace(1.0, 2), FIFOScheduler(), platform="a")

    def test_simulate_rejects_invalid_unit_batch_size(self):
        oracle = LatencyOracle(_FixedLatencyPlatform(1.0))
        units = [ServerUnit(unit_id=0, appliance="a", oracle=oracle,
                            max_batch_size=0)]
        with pytest.raises(ConfigurationError):
            simulate(units, constant_trace(1.0, 2), FIFOScheduler(), platform="a")

    def test_fleet_member_rejects_invalid_batch_size(self):
        with pytest.raises(ConfigurationError):
            FleetMember("m", _FixedLatencyPlatform(1.0), max_batch_size=0)

    def test_fleet_rejects_unbatchable_batch_member_eagerly(self):
        with pytest.raises(ConfigurationError):
            ApplianceFleet(
                [FleetMember("m", _FixedLatencyPlatform(1.0), max_batch_size=4)]
            )


class TestBatchAwareScheduling:
    def test_select_batch_follows_policy_order(self):
        queue = [
            ServiceRequest(0, 0.0, Workload(1, 1), priority=2),
            ServiceRequest(1, 0.1, Workload(1, 1), priority=0),
            ServiceRequest(2, 0.2, Workload(1, 1), priority=1),
            ServiceRequest(3, 0.3, Workload(1, 1), priority=0),
        ]
        picked = make_scheduler("priority").select_batch(
            1.0, queue, lambda r: 1.0, 3
        )
        # The most urgent requests join the batch, arrival order within ties.
        assert picked == [1, 3, 2]
        fifo = make_scheduler("fifo").select_batch(1.0, queue, lambda r: 1.0, 3)
        assert fifo == [0, 1, 2]

    def test_select_batch_excludes_infeasible_requests(self):
        # The default greedy composition must never gather a request the
        # policy declared infeasible at the same instant.
        class _DropOdd(SchedulingPolicy):
            name = "drop-odd"

            def select(self, now, queue, estimate):
                return 0

            def infeasible(self, now, queue, estimate):
                return [
                    index
                    for index, request in enumerate(queue)
                    if request.request_id % 2 == 1
                ]

        queue = [ServiceRequest(i, 0.1 * i, Workload(1, 1)) for i in range(5)]
        picked = _DropOdd().select_batch(1.0, queue, lambda r: 1.0, 5)
        assert picked == [0, 2, 4]
        # The batch respects max_size after the filter, not before.
        assert _DropOdd().select_batch(1.0, queue, lambda r: 1.0, 2) == [0, 2]

    def test_deadline_batches_never_gather_expired_requests(self):
        queue = [
            ServiceRequest(0, 0.0, Workload(1, 1), slo_s=100.0),
            ServiceRequest(1, 0.0, Workload(1, 1), slo_s=1.0),  # expired
            ServiceRequest(2, 0.0, Workload(1, 1), slo_s=50.0),
        ]
        picked = make_scheduler("deadline").select_batch(
            10.0, queue, lambda r: 1.0, 3
        )
        assert picked == [2, 0]  # EDF order over the feasible survivors

    def test_select_batch_unchanged_for_policies_without_infeasible(self):
        # Equivalence with the pre-filter composition: for any policy whose
        # ``infeasible`` is the empty default, filtering first is a no-op.
        def compose_without_filter(policy, now, queue, estimate, max_size):
            remaining = list(queue)
            positions = list(range(len(queue)))
            picked = []
            while remaining and len(picked) < max_size:
                index = policy.select(now, remaining, estimate)
                if index is None:
                    break
                picked.append(positions.pop(index))
                remaining.pop(index)
            return picked

        queue = [
            ServiceRequest(0, 0.0, Workload(1, 9), priority=2),
            ServiceRequest(1, 0.1, Workload(1, 2), priority=0),
            ServiceRequest(2, 0.2, Workload(1, 7), priority=1),
            ServiceRequest(3, 0.3, Workload(1, 1), priority=0),
            ServiceRequest(4, 0.4, Workload(1, 5), priority=3),
        ]
        estimate = lambda r: 0.1 * r.workload.output_tokens
        for name in ("fifo", "sjf", "priority"):
            policy = make_scheduler(name)
            for max_size in (1, 2, 3, 5, 9):
                assert policy.select_batch(
                    1.0, queue, estimate, max_size
                ) == compose_without_filter(policy, 1.0, queue, estimate, max_size)

    def test_sjf_batches_the_shortest_requests(self):
        platform = _BatchableTokenPlatform(fixed_ms_per_token=1000.0)
        # A blocker occupies the unit while one long and two short requests
        # queue behind it; at the completion SJF must batch the two shorts.
        trace = [
            ServiceRequest(0, 0.0, Workload(1, 2)),
            ServiceRequest(1, 0.1, Workload(1, 8)),
            ServiceRequest(2, 0.2, Workload(1, 1)),
            ServiceRequest(3, 0.3, Workload(1, 1)),
        ]
        server = ApplianceServer(
            platform, 1, "batchable", scheduler="sjf",
            batch_policy=DynamicBatching(2, 0.0), max_batch_size=2,
        )
        report = server.serve(trace)
        batches = sorted(report.iter_dispatches(), key=lambda d: d.start_time_s)
        members = {
            c.request.request_id
            for c in report.completed
            if c.batch_id == batches[1].batch_id
        }
        assert members == {2, 3}

    def test_fleet_mixes_unbatched_dfx_with_batched_gpu(self):
        # The paper's asymmetry behind one queue: a fast batch=1 appliance
        # and a slow batch-capable one.  The fast member takes requests
        # alone; the slow member only ever sees gathered batches of the
        # overflow.
        fast = _FixedLatencyPlatform(1.0)
        slow = _BatchableTokenPlatform(fixed_ms_per_token=4000.0,
                                       marginal_ms_per_token=100.0)
        fleet = ApplianceFleet(
            [
                FleetMember("dfx", fast, num_clusters=1),
                FleetMember("gpu", slow, num_clusters=1, max_batch_size=4),
            ],
            batch_policy=DynamicBatching(4, timeout_s=0.5),
        )
        report = fleet.serve(constant_trace(0.0, 5, Workload(1, 1)))
        assert report.num_requests == 5
        by_appliance = {}
        for dispatch in report.iter_dispatches():
            by_appliance.setdefault(dispatch.appliance, []).append(dispatch)
        # One singleton on the fast unit, the 4 queued behind it batch on
        # the slow unit (greedy timeout-0 batching).
        assert [d.batch_size for d in by_appliance["dfx"]][0] == 1
        assert any(d.batch_size > 1 for d in by_appliance["gpu"])
        for dispatch in by_appliance["dfx"]:
            assert dispatch.batch_size == 1  # DFX stays a batch=1 passthrough


class TestBatchSizeOneEquivalence:
    """batch_policy="none" and dynamic(max=1) must reproduce the unbatched
    simulator bit for bit, mirroring the legacy-loop equivalence test."""

    @pytest.mark.parametrize("num_clusters", [1, 2, 3])
    def test_none_and_dynamic1_match_default_exactly(self, num_clusters):
        platform = _BatchableTokenPlatform(fixed_ms_per_token=400.0)
        trace = poisson_trace(1.5, 60.0, seed=9)
        baseline = ApplianceServer(platform, num_clusters, "p").serve(trace)
        explicit_none = ApplianceServer(
            platform, num_clusters, "p", batch_policy="none"
        ).serve(trace)
        dynamic_one = ApplianceServer(
            platform, num_clusters, "p",
            batch_policy=DynamicBatching(max_batch_size=1, timeout_s=5.0),
            # The units are batch-capable; the policy's size cap alone must
            # force the singleton passthrough.
            max_batch_size=8,
        ).serve(trace)
        assert explicit_none.completed == baseline.completed
        assert dynamic_one.completed == baseline.completed
        for other in (explicit_none, dynamic_one):
            assert other.abandoned == baseline.abandoned
            assert other.total_energy_joules == baseline.total_energy_joules
            assert other.makespan_s == baseline.makespan_s
            assert other.first_arrival_s == baseline.first_arrival_s
        assert baseline.batch_policy == "none"
        assert dynamic_one.batch_policy == "dynamic"
        assert all(c.batch_size == 1 for c in dynamic_one.completed)

    def test_unit_capacity_one_forces_passthrough_under_batchy_policy(self):
        platform = _BatchableTokenPlatform(fixed_ms_per_token=400.0)
        trace = poisson_trace(2.0, 40.0, seed=3)
        baseline = ApplianceServer(platform, 2, "p").serve(trace)
        capped = ApplianceServer(
            platform, 2, "p", batch_policy=DynamicBatching(8, 0.5),
            max_batch_size=1,
        ).serve(trace)
        assert capped.completed == baseline.completed
