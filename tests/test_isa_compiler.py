"""Tests for the DFX compiler (Algorithm 1 lowering)."""

import pytest

from repro.errors import CompilationError
from repro.isa.compiler import DFXCompiler, kv_key_buffer, kv_value_buffer
from repro.isa.opcodes import DMAOpcode, MatrixOpcode, RouterOpcode
from repro.isa.validation import validate_layer_program, validate_program
from repro.model.config import GPT2_1_5B, GPT2_TEST_TINY
from repro.parallel.partitioner import build_partition_plan
from repro.results import PHASE_LAYERNORM, PHASE_RESIDUAL, PHASE_SELF_ATTENTION, PHASE_SYNC


@pytest.fixture(scope="module")
def compiler_1_5b():
    plan = build_partition_plan(GPT2_1_5B, 4)
    return DFXCompiler(GPT2_1_5B, plan, device_id=0)


@pytest.fixture(scope="module")
def compiler_tiny():
    plan = build_partition_plan(GPT2_TEST_TINY, 2)
    return DFXCompiler(GPT2_TEST_TINY, plan, device_id=0)


class TestDecoderLayerProgram:
    def test_exactly_four_syncs_per_layer(self, compiler_1_5b):
        program = compiler_1_5b.compile_decoder_layer(rows=1, past_length=32)
        assert program.sync_count() == 4

    def test_sync_payloads_match_algorithm1(self, compiler_1_5b):
        program = compiler_1_5b.compile_decoder_layer(rows=1, past_length=0)
        payloads = [sync.payload_elements for sync in program.router_instructions()]
        assert payloads == [GPT2_1_5B.n_embd, GPT2_1_5B.n_embd,
                            GPT2_1_5B.ffn_dim, GPT2_1_5B.n_embd]

    def test_value_projection_comes_before_key_and_query(self, compiler_1_5b):
        # Sec. V-B "Transpose Scheme": Value is computed first so its HBM-side
        # transpose is hidden behind the Key and Query projections.
        program = compiler_1_5b.compile_decoder_layer(rows=1, past_length=0)
        conv_targets = [
            instr.dst for instr in program.matrix_instructions()
            if instr.opcode is MatrixOpcode.CONV1D
        ]
        assert conv_targets.index("value_local") < conv_targets.index("key_local")
        assert conv_targets.index("key_local") < conv_targets.index("query_local")

    def test_one_masked_mm_per_local_head(self, compiler_1_5b):
        plan = build_partition_plan(GPT2_1_5B, 4)
        program = compiler_1_5b.compile_decoder_layer(rows=1, past_length=10)
        masked = [i for i in program.matrix_instructions()
                  if i.opcode is MatrixOpcode.MASKED_MM]
        assert len(masked) == plan.device(0).num_heads
        for instr in masked:
            assert instr.in_dim == GPT2_1_5B.head_dim
            assert instr.out_dim == 11  # past 10 + 1 new token
            assert instr.mask_offset == 10
            assert instr.apply_redu_max

    def test_kv_cache_store_per_local_head(self, compiler_1_5b):
        plan = build_partition_plan(GPT2_1_5B, 4)
        local_heads = plan.device(0).num_heads
        program = compiler_1_5b.compile_decoder_layer(rows=1, past_length=0)
        stores = [i for i in program.dma_instructions() if i.opcode is DMAOpcode.STORE_KV]
        assert len(stores) == 2 * local_heads  # keys and values
        destinations = {store.dst for store in stores}
        assert kv_key_buffer(0) in destinations
        assert kv_value_buffer(local_heads - 1) in destinations

    def test_gelu_applied_only_to_first_ffn_layer(self, compiler_1_5b):
        program = compiler_1_5b.compile_decoder_layer(rows=1, past_length=0)
        gelu_targets = [i.dst for i in program.matrix_instructions() if i.apply_gelu]
        assert gelu_targets == ["ffn1_local"]

    def test_phase_tags_present(self, compiler_1_5b):
        program = compiler_1_5b.compile_decoder_layer(rows=1, past_length=0)
        tags = program.tag_counts()
        for phase in (PHASE_LAYERNORM, PHASE_SELF_ATTENTION, PHASE_RESIDUAL, PHASE_SYNC):
            assert tags.get(phase, 0) > 0
        assert tags[PHASE_RESIDUAL] == 2

    def test_program_is_statically_valid(self, compiler_1_5b):
        program = compiler_1_5b.compile_decoder_layer(rows=4, past_length=16)
        report = validate_layer_program(program, expected_syncs=4)
        assert report.is_valid, report.errors

    def test_flops_scale_with_rows(self, compiler_tiny):
        single = compiler_tiny.compile_decoder_layer(rows=1, past_length=0).total_flops()
        double = compiler_tiny.compile_decoder_layer(rows=2, past_length=0).total_flops()
        assert double > 1.8 * single

    def test_weight_bytes_match_partition(self, compiler_1_5b):
        plan = build_partition_plan(GPT2_1_5B, 4)
        program = compiler_1_5b.compile_decoder_layer(rows=1, past_length=0)
        conv_weight_bytes = sum(
            i.weight_bytes() for i in program.matrix_instructions()
            if i.opcode is MatrixOpcode.CONV1D
        )
        emb = GPT2_1_5B.n_embd
        expected = (3 * emb * emb // 4 + emb * emb // 4 + 8 * emb * emb // 4) * 2
        assert conv_weight_bytes == expected

    def test_invalid_arguments_rejected(self, compiler_tiny):
        with pytest.raises(CompilationError):
            compiler_tiny.compile_decoder_layer(rows=0, past_length=0)
        with pytest.raises(CompilationError):
            compiler_tiny.compile_decoder_layer(rows=1, past_length=-1)


class TestEmbeddingAndLMHead:
    def test_embedding_program_outputs_hidden(self, compiler_tiny):
        program = compiler_tiny.compile_embedding(rows=3)
        assert program.outputs == ("hidden",)
        report = validate_program(program)
        assert report.is_valid, report.errors

    def test_embedding_rejects_bad_rows(self, compiler_tiny):
        with pytest.raises(CompilationError):
            compiler_tiny.compile_embedding(rows=0)

    def test_lm_head_scores_device_vocab_slice(self, compiler_1_5b):
        plan = build_partition_plan(GPT2_1_5B, 4)
        program = compiler_1_5b.compile_lm_head()
        logits_mm = [i for i in program.matrix_instructions() if i.dst == "logits_local"]
        assert len(logits_mm) == 1
        assert logits_mm[0].out_dim == plan.device(0).vocab_rows
        assert logits_mm[0].transpose_weight

    def test_lm_head_gathers_full_vocabulary(self, compiler_1_5b):
        program = compiler_1_5b.compile_lm_head()
        syncs = program.router_instructions()
        assert len(syncs) == 1
        assert syncs[0].payload_elements == GPT2_1_5B.vocab_size

    def test_lm_head_is_valid(self, compiler_1_5b):
        report = validate_program(compiler_1_5b.compile_lm_head())
        assert report.is_valid, report.errors

    def test_compile_token_step_bundles_three_programs(self, compiler_tiny):
        step = compiler_tiny.compile_token_step(rows=1, past_length=5)
        assert step.embedding.outputs == ("hidden",)
        assert step.decoder_layer.sync_count() == 4
        assert step.lm_head.outputs == ("logits",)

    def test_mismatched_plan_rejected(self):
        plan = build_partition_plan(GPT2_TEST_TINY, 2)
        with pytest.raises(CompilationError):
            DFXCompiler(GPT2_1_5B, plan, device_id=0)


class TestBatchedPrograms:
    def test_batch_one_delegates_to_unbatched_programs(self, compiler_tiny):
        assert (compiler_tiny.compile_batched_decoder_step(1, 8)
                is compiler_tiny.compile_decoder_layer(1, 8))
        assert compiler_tiny.compile_batched_lm_head(1) is compiler_tiny.compile_lm_head()

    def test_batched_programs_are_memoized(self, compiler_tiny):
        assert (compiler_tiny.compile_batched_decoder_step(4, 8)
                is compiler_tiny.compile_batched_decoder_step(4, 8))
        assert (compiler_tiny.compile_batched_lm_head(4)
                is compiler_tiny.compile_batched_lm_head(4))

    def test_shared_weights_multicast_but_kv_streams_do_not(self, compiler_tiny):
        # The six model matmuls stream their weights once per cohort step
        # (weight reuse across the batch rows); the per-stream KV matmuls
        # cannot share anything, which is exactly the paper's Sec. III-A
        # argument for why batching helps less as the context grows.
        program = compiler_tiny.compile_batched_decoder_step(4, past_length=8)
        for instruction in program.matrix_instructions():
            assert instruction.rows == 4
            if instruction.weight_operand.startswith("kv."):
                assert instruction.weight_reuse_rows == 1
            else:
                assert instruction.weight_reuse_rows == 4

    def test_batched_lm_head_scores_all_streams_in_one_pass(self, compiler_tiny):
        program = compiler_tiny.compile_batched_lm_head(4)
        (head,) = program.matrix_instructions()
        assert head.rows == 4
        assert head.weight_reuse_rows == 4

    def test_batched_layer_program_validates(self, compiler_tiny):
        program = compiler_tiny.compile_batched_decoder_step(4, past_length=8)
        validate_program(program)
        assert program.sync_count() == 4

    def test_invalid_batch_rejected(self, compiler_tiny):
        with pytest.raises(CompilationError):
            compiler_tiny.compile_batched_decoder_step(0, 8)
        with pytest.raises(CompilationError):
            compiler_tiny.compile_batched_lm_head(0)
