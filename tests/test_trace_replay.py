"""Tests for the trace replay adapter and the diurnal trace generator."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    ApplianceServer,
    diurnal_trace,
    merge_traces,
    poisson_trace,
    replay_trace,
    with_service_levels,
)
from repro.workloads import Workload
from serving_doubles import FixedLatencyPlatform as _FixedLatencyPlatform


CSV_LOG = """\
arrival_time_s,input_tokens,output_tokens,priority,slo_s,patience_s,service_class
0.5,32,16,0,5.0,30.0,interactive
0.1,64,64,1,,,batch
2.25,50,150,0,8.5,,interactive
"""


class TestReplayCSV:
    def test_replays_sorted_with_sequential_ids(self, tmp_path):
        path = tmp_path / "requests.csv"
        path.write_text(CSV_LOG)
        trace = replay_trace(path)
        assert [r.arrival_time_s for r in trace] == [0.1, 0.5, 2.25]
        assert [r.request_id for r in trace] == [0, 1, 2]
        assert trace[0].workload == Workload(64, 64)
        assert trace[0].service_class == "batch"
        # Empty CSV cells mean "unset".
        assert trace[0].slo_s is None and trace[0].patience_s is None
        assert trace[1].slo_s == pytest.approx(5.0)
        assert trace[1].patience_s == pytest.approx(30.0)
        assert trace[2].slo_s == pytest.approx(8.5)
        assert trace[2].patience_s is None

    def test_explicit_request_ids_kept(self, tmp_path):
        path = tmp_path / "requests.csv"
        path.write_text(
            "request_id,arrival_time_s,input_tokens,output_tokens\n"
            "7,1.0,8,8\n5,0.5,4,4\n"
        )
        trace = replay_trace(path)
        assert [r.request_id for r in trace] == [5, 7]

    def test_mixed_ids_rejected(self, tmp_path):
        path = tmp_path / "requests.csv"
        path.write_text(
            "request_id,arrival_time_s,input_tokens,output_tokens\n"
            "7,1.0,8,8\n,0.5,4,4\n"
        )
        with pytest.raises(ConfigurationError):
            replay_trace(path)

    def test_duplicate_explicit_ids_rejected(self, tmp_path):
        path = tmp_path / "requests.csv"
        path.write_text(
            "request_id,arrival_time_s,input_tokens,output_tokens\n"
            "7,1.0,8,8\n7,0.5,4,4\n"
        )
        with pytest.raises(ConfigurationError, match="duplicate request_id"):
            replay_trace(path)

    def test_missing_required_field_reported_with_location(self, tmp_path):
        path = tmp_path / "requests.csv"
        path.write_text("arrival_time_s,input_tokens\n1.0,8\n")
        with pytest.raises(ConfigurationError, match="record 2"):
            replay_trace(path)

    def test_bad_value_reported(self, tmp_path):
        path = tmp_path / "requests.csv"
        path.write_text(
            "arrival_time_s,input_tokens,output_tokens\nsoon,8,8\n"
        )
        with pytest.raises(ConfigurationError):
            replay_trace(path)

    def test_missing_file_and_bad_format(self, tmp_path):
        with pytest.raises(ConfigurationError):
            replay_trace(tmp_path / "absent.csv")
        path = tmp_path / "requests.csv"
        path.write_text(CSV_LOG)
        with pytest.raises(ConfigurationError):
            replay_trace(path, format="yaml")

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "requests.csv"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            replay_trace(path)


class TestReplayJSONL:
    def test_replays_jsonl_by_suffix(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        records = [
            {"arrival_time_s": 3.0, "input_tokens": 32, "output_tokens": 8},
            {"arrival_time_s": 1.0, "input_tokens": 50, "output_tokens": 50,
             "slo_s": 6.0, "service_class": "chat"},
        ]
        path.write_text(
            "\n".join(json.dumps(record) for record in records) + "\n\n"
        )
        trace = replay_trace(path)
        assert [r.arrival_time_s for r in trace] == [1.0, 3.0]
        assert trace[0].service_class == "chat"
        assert trace[0].slo_s == pytest.approx(6.0)

    def test_explicit_format_overrides_suffix(self, tmp_path):
        path = tmp_path / "requests.log"
        path.write_text(json.dumps(
            {"arrival_time_s": 0.0, "input_tokens": 4, "output_tokens": 4}
        ) + "\n")
        trace = replay_trace(path, format="jsonl")
        assert len(trace) == 1

    def test_invalid_json_reported_with_line(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text('{"arrival_time_s": 0.0, "input_tokens": 4}\nnot json\n')
        with pytest.raises(ConfigurationError):
            replay_trace(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ConfigurationError, match="JSON object"):
            replay_trace(path)


class TestReplayRoundTrip:
    def test_replayed_trace_serves_like_the_original(self, tmp_path):
        """A synthetic trace written to a log and replayed serves identically."""
        original = with_service_levels(
            poisson_trace(2.0, 30.0, seed=9), slo_s=10.0, service_class="chat"
        )
        path = tmp_path / "requests.jsonl"
        with path.open("w") as handle:
            for request in original:
                handle.write(json.dumps({
                    "request_id": request.request_id,
                    "arrival_time_s": request.arrival_time_s,
                    "input_tokens": request.workload.input_tokens,
                    "output_tokens": request.workload.output_tokens,
                    "priority": request.priority,
                    "slo_s": request.slo_s,
                    "service_class": request.service_class,
                }) + "\n")
        replayed = replay_trace(path)
        assert replayed == original
        server = ApplianceServer(_FixedLatencyPlatform(0.5), 2)
        assert server.serve(replayed).completed == server.serve(original).completed


class TestDiurnalTrace:
    def test_rate_follows_the_daily_cycle(self):
        # One full day at a strong peak/trough contrast: the peak quarter
        # of the cycle must see far more arrivals than the trough quarter.
        period = 86_400.0
        trace = diurnal_trace(
            0.05, period, trough_rate_per_s=0.005, period_s=period, seed=4
        )
        quarter = period / 4.0
        trough_half = sum(
            1 for r in trace
            if r.arrival_time_s < quarter or r.arrival_time_s >= 3 * quarter
        )
        peak_half = len(trace) - trough_half
        assert peak_half > 2 * trough_half

    def test_phase_shifts_the_peak(self):
        period = 1000.0
        # phase_s = period/2 starts the trace at the peak.
        trace = diurnal_trace(
            2.0, period / 2, trough_rate_per_s=0.0, period_s=period,
            phase_s=period / 2, seed=1,
        )
        # Starting at the peak, the first half-window must be busier than
        # the second (which descends toward the trough).
        first = sum(1 for r in trace if r.arrival_time_s < period / 4)
        assert first > (len(trace) - first)

    def test_deterministic_and_sorted(self):
        first = diurnal_trace(1.0, 500.0, seed=11)
        second = diurnal_trace(1.0, 500.0, seed=11)
        assert first == second
        arrivals = [r.arrival_time_s for r in first]
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 500.0 for t in arrivals)
        assert [r.request_id for r in first] == list(range(len(first)))

    def test_mean_rate_between_trough_and_peak(self):
        duration = 20_000.0
        trace = diurnal_trace(
            1.0, duration, trough_rate_per_s=0.2, period_s=1000.0, seed=2
        )
        observed = len(trace) / duration
        # Sinusoid mean is (peak + trough) / 2 = 0.6 req/s.
        assert observed == pytest.approx(0.6, rel=0.1)

    def test_default_trough_is_a_tenth_of_peak(self):
        duration = 20_000.0
        trace = diurnal_trace(1.0, duration, period_s=1000.0, seed=3)
        assert len(trace) / duration == pytest.approx(0.55, rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            diurnal_trace(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            diurnal_trace(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            diurnal_trace(1.0, 10.0, trough_rate_per_s=-0.1)
        with pytest.raises(ConfigurationError):
            diurnal_trace(1.0, 10.0, trough_rate_per_s=2.0)
        with pytest.raises(ConfigurationError):
            diurnal_trace(1.0, 10.0, period_s=0.0)

    def test_composes_with_other_traces(self):
        merged = merge_traces(
            diurnal_trace(0.5, 100.0, seed=5),
            poisson_trace(0.5, 100.0, seed=6),
        )
        assert [r.request_id for r in merged] == list(range(len(merged)))
        arrivals = [r.arrival_time_s for r in merged]
        assert arrivals == sorted(arrivals)

    def test_serves_through_the_simulator(self):
        trace = diurnal_trace(2.0, 120.0, period_s=60.0, seed=7)
        report = ApplianceServer(_FixedLatencyPlatform(0.2), 2).serve(trace)
        assert report.num_requests == len(trace)
