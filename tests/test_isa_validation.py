"""Tests for static program validation."""

import pytest

from repro.errors import ProgramValidationError
from repro.isa.instructions import (
    DMAInstruction,
    MatrixInstruction,
    RouterInstruction,
    VectorInstruction,
)
from repro.isa.opcodes import DMAOpcode, MatrixOpcode, RouterOpcode, VectorOpcode
from repro.isa.program import Program
from repro.isa.validation import validate_layer_program, validate_program


def _conv(dst="y", src="x", weight="w"):
    return MatrixInstruction(MatrixOpcode.CONV1D, dst=dst, input_operand=src,
                             weight_operand=weight, rows=1, in_dim=4, out_dim=4)


class TestDefBeforeUse:
    def test_valid_chain(self):
        program = Program(name="ok", inputs=("x",), outputs=("z",))
        program.extend([
            _conv(dst="y", src="x"),
            VectorInstruction(VectorOpcode.ADD, dst="z", src1="y", src2="x", length=4),
        ])
        assert validate_program(program).is_valid

    def test_use_before_definition_detected(self):
        program = Program(name="bad", inputs=("x",))
        program.append(
            VectorInstruction(VectorOpcode.ADD, dst="z", src1="missing", src2="x", length=4)
        )
        report = validate_program(program)
        assert not report.is_valid
        assert any("missing" in error for error in report.errors)

    def test_matrix_input_must_be_live(self):
        program = Program(name="bad", inputs=())
        program.append(_conv(src="never_defined"))
        assert not validate_program(program).is_valid

    def test_missing_declared_output_detected(self):
        program = Program(name="bad", inputs=("x",), outputs=("result",))
        program.append(_conv(dst="y", src="x"))
        report = validate_program(program)
        assert any("result" in error for error in report.errors)

    def test_raise_if_invalid(self):
        program = Program(name="bad", inputs=(), outputs=("y",))
        with pytest.raises(ProgramValidationError):
            validate_program(program).raise_if_invalid()


class TestMemoryChecking:
    def test_weight_presence_checked_when_memory_given(self):
        program = Program(name="m", inputs=("x",))
        program.append(_conv(weight="w_ffn1"))
        ok = validate_program(program, memory_buffers={"w_ffn1"})
        missing = validate_program(program, memory_buffers={"something_else"})
        assert ok.is_valid
        assert not missing.is_valid

    def test_dma_store_requires_live_source(self):
        program = Program(name="m", inputs=())
        program.append(DMAInstruction(DMAOpcode.STORE_KV, dst="kv.key.h0", src="key_local"))
        assert not validate_program(program).is_valid

    def test_router_source_must_be_live(self):
        program = Program(name="m", inputs=())
        program.append(RouterInstruction(RouterOpcode.SYNC, dst="full", src="part",
                                         payload_elements=8))
        assert not validate_program(program).is_valid

    def test_column_window_mismatch_detected(self):
        program = Program(name="m", inputs=("x",))
        program.append(
            MatrixInstruction(MatrixOpcode.MASKED_MM, dst="s", input_operand="x",
                              weight_operand="k", rows=1, in_dim=64, out_dim=8,
                              input_col_offset=0, input_col_count=32)
        )
        report = validate_program(program)
        assert any("column window" in error for error in report.errors)


class TestLayerValidation:
    def test_sync_count_enforced(self):
        program = Program(name="layer", inputs=("hidden",), outputs=("hidden",))
        report = validate_layer_program(program, expected_syncs=4)
        assert any("synchronizations" in error for error in report.errors)
