"""Integration tests: the functional DFX simulator vs the reference GPT-2.

These are the strongest correctness tests in the suite: they verify that the
compiler + partitioner + instruction semantics reproduce the reference model's
outputs through the whole pipeline (embedding, every decoder layer with KV
caching and four ring syncs, final norm, LM head) on 1, 2, and 4 devices.
"""

import numpy as np
import pytest

from repro.core.functional import DFXFunctionalSimulator, FunctionalCore, split_at_syncs
from repro.errors import ExecutionError
from repro.isa.compiler import DFXCompiler
from repro.isa.instructions import RouterInstruction, VectorInstruction
from repro.isa.opcodes import RouterOpcode, VectorOpcode
from repro.isa.program import Program
from repro.model.config import GPT2_TEST_TINY
from repro.model.gpt2 import GPT2Model
from repro.model.numerics import FP16_DFX, FP32_EXACT
from repro.parallel.partitioner import build_partition_plan


@pytest.fixture(scope="module")
def reference(request):
    weights = request.getfixturevalue("tiny_weights")
    return GPT2Model(weights, numerics=FP16_DFX)


class TestFunctionalCorePrimitives:
    def test_vector_ops(self):
        core = FunctionalCore(numerics=FP32_EXACT)
        core.registers["a"] = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        core.execute_instruction(
            VectorInstruction(VectorOpcode.ACCUM, dst="sum", src1="a", length=3)
        )
        assert core.registers["sum"][0, 0] == pytest.approx(6.0)
        core.execute_instruction(
            VectorInstruction(VectorOpcode.MUL, dst="scaled", src1="a", immediate=2.0, length=3)
        )
        np.testing.assert_allclose(core.registers["scaled"], [[2.0, 4.0, 6.0]])

    def test_reading_undefined_register_fails(self):
        core = FunctionalCore()
        with pytest.raises(ExecutionError):
            core.execute_instruction(
                VectorInstruction(VectorOpcode.EXP, dst="y", src1="missing", length=4)
            )

    def test_sync_without_handler_fails(self):
        core = FunctionalCore()
        core.registers["part"] = np.zeros((1, 4), dtype=np.float32)
        with pytest.raises(ExecutionError):
            core.execute_instruction(
                RouterInstruction(RouterOpcode.SYNC, dst="full", src="part",
                                  payload_elements=8)
            )

    def test_split_at_syncs(self):
        plan = build_partition_plan(GPT2_TEST_TINY, 2)
        program = DFXCompiler(GPT2_TEST_TINY, plan, 0).compile_decoder_layer(1, 0)
        segments = split_at_syncs(program)
        assert sum(1 for _, sync in segments if sync is not None) == 4
        # Instruction count is preserved across the split.
        total = sum(len(seg) for seg, _ in segments) + 4
        assert total == len(program)


class TestSimulatorMatchesReference:
    @pytest.mark.parametrize("num_devices", [1, 2, 4])
    def test_summarization_logits_match(self, tiny_weights, reference, num_devices):
        simulator = DFXFunctionalSimulator(tiny_weights, num_devices=num_devices,
                                           numerics=FP16_DFX)
        tokens = np.array([5, 111, 42, 7])
        expected = reference.forward(tokens)
        logits, next_token = simulator.forward(tokens)
        assert next_token == expected.next_token_id
        np.testing.assert_allclose(
            logits, expected.logits[-1].astype(np.float32), atol=5e-3, rtol=1e-2
        )

    def test_generation_stage_matches_reference(self, tiny_weights, reference):
        simulator = DFXFunctionalSimulator(tiny_weights, num_devices=2, numerics=FP16_DFX)
        prompt = [9, 10, 11]
        cache = reference.new_cache()
        expected_first = reference.forward(np.asarray(prompt), cache)
        expected_tokens = [expected_first.next_token_id]
        for _ in range(3):
            out = reference.forward(np.asarray([expected_tokens[-1]]), cache)
            expected_tokens.append(out.next_token_id)

        generated = simulator.generate(prompt, max_new_tokens=4)
        assert generated == expected_tokens
        assert simulator.kv_cache_length == len(prompt) + 3

    def test_device_count_does_not_change_results(self, tiny_weights):
        tokens = np.array([3, 14, 159, 26])
        single = DFXFunctionalSimulator(tiny_weights, 1, FP16_DFX).forward(tokens)
        quad = DFXFunctionalSimulator(tiny_weights, 4, FP16_DFX).forward(tokens)
        assert single[1] == quad[1]
        np.testing.assert_allclose(single[0], quad[0], atol=5e-3)

    def test_kv_cache_persists_between_calls(self, tiny_weights):
        simulator = DFXFunctionalSimulator(tiny_weights, num_devices=2)
        simulator.forward(np.array([1, 2, 3]))
        assert simulator.kv_cache_length == 3
        simulator.forward(np.array([4]))
        assert simulator.kv_cache_length == 4

    def test_invalid_inputs_rejected(self, tiny_weights):
        simulator = DFXFunctionalSimulator(tiny_weights, num_devices=2)
        with pytest.raises(ExecutionError):
            simulator.forward(np.array([]))
        with pytest.raises(ExecutionError):
            simulator.generate([1, 2], max_new_tokens=0)
