"""Tests for heterogeneous fleet serving and the capacity-planning API."""

import pytest

from repro.analysis.experiments import fleet_capacity_plan, run_scheduler_comparison
from repro.errors import ConfigurationError
from repro.serving import (
    ApplianceFleet,
    ApplianceServer,
    FleetMember,
    ServiceRequest,
    constant_trace,
    find_max_rate_under_slo,
    poisson_trace,
    with_service_levels,
)
from repro.workloads import Workload
from serving_doubles import FixedLatencyPlatform as _FixedLatencyPlatform


def _two_speed_fleet(scheduler="fifo"):
    """A fast 2-cluster appliance plus a 4x-slower single-cluster one."""
    return ApplianceFleet(
        [
            FleetMember("fast", _FixedLatencyPlatform(1.0), num_clusters=2),
            FleetMember("slow", _FixedLatencyPlatform(4.0), num_clusters=1),
        ],
        scheduler=scheduler,
    )


class TestFleetDispatch:
    def test_fleet_metadata(self):
        fleet = _two_speed_fleet()
        assert fleet.num_clusters == 3
        report = fleet.serve(constant_trace(10.0, 2))
        assert report.platform == "fast+slow"
        assert report.num_clusters == 3
        assert report.appliance_clusters == {"fast": 2, "slow": 1}

    def test_idle_fleet_prefers_the_faster_appliance(self):
        fleet = _two_speed_fleet()
        report = fleet.serve(constant_trace(10.0, 4))
        # With everything idle at each arrival, the greedy earliest-finish
        # balancer always picks a fast unit.
        assert {c.appliance for c in report.completed} == {"fast"}

    def test_overflow_spills_to_the_slower_appliance(self):
        fleet = _two_speed_fleet()
        # Three simultaneous arrivals: two on the fast clusters, the third
        # starts immediately on the slow appliance instead of queueing.
        report = fleet.serve(constant_trace(0.0, 3))
        by_appliance = sorted(c.appliance for c in report.completed)
        assert by_appliance == ["fast", "fast", "slow"]
        assert all(c.queueing_delay_s == pytest.approx(0.0) for c in report.completed)

    def test_fleet_beats_its_fast_member_alone_under_overload(self):
        trace = constant_trace(0.4, 30)
        alone = ApplianceServer(_FixedLatencyPlatform(1.0), 2, "fast").serve(trace)
        fleet = _two_speed_fleet().serve(trace)
        assert fleet.mean_queueing_delay_s < alone.mean_queueing_delay_s

    def test_fleet_conserves_requests_under_abandonment(self):
        fleet = _two_speed_fleet()
        trace = with_service_levels(
            poisson_trace(4.0, 20.0, seed=2), slo_s=6.0, patience_s=2.0
        )
        report = fleet.serve(trace)
        assert report.num_requests + report.num_abandoned == len(trace)
        assert report.num_abandoned > 0  # the load is far beyond capacity

    def test_per_appliance_utilization(self):
        fleet = _two_speed_fleet()
        report = fleet.serve(poisson_trace(2.0, 40.0, seed=8))
        utilization = report.utilization_by_appliance()
        assert set(utilization) == {"fast", "slow"}
        for value in utilization.values():
            assert 0.0 <= value <= 1.0
        # Aggregate utilization is the cluster-weighted mean of the parts.
        weighted = (2 * utilization["fast"] + 1 * utilization["slow"]) / 3
        assert report.utilization == pytest.approx(weighted)

    def test_deadline_drops_use_system_best_service_time(self):
        # The fast unit is busy and only the slow one is idle; infeasibility
        # must be judged against the *system's* best service time, so a
        # request the fast unit can still save is not spuriously dropped.
        fleet = ApplianceFleet(
            [
                FleetMember("fast", _FixedLatencyPlatform(1.0), num_clusters=1),
                FleetMember("slow", _FixedLatencyPlatform(10.0), num_clusters=1),
            ],
            scheduler="deadline",
        )
        workload = Workload(1, 1)
        trace = [
            # Occupies the fast unit for [0, 1]; generous SLO.
            ServiceRequest(0, 0.0, workload, slo_s=100.0),
            # Arrives at t=0.5 with slo 3 s (deadline t=3.5): the idle slow
            # unit needs 10 s, but the fast unit frees at t=1 and can finish
            # by t=2.  It must be kept, not dropped as infeasible.
            ServiceRequest(1, 0.5, workload, slo_s=3.0),
        ]
        report = fleet.serve(trace)
        assert report.num_abandoned == 0
        late = {c.request.request_id: c for c in report.completed}[1]
        assert late.appliance == "fast"
        assert late.slo_met

    def test_invalid_fleets_rejected(self):
        with pytest.raises(ConfigurationError):
            ApplianceFleet([])
        with pytest.raises(ConfigurationError):
            ApplianceFleet(
                [
                    FleetMember("dup", _FixedLatencyPlatform(1.0)),
                    FleetMember("dup", _FixedLatencyPlatform(2.0)),
                ]
            )
        with pytest.raises(ConfigurationError):
            FleetMember("bad", _FixedLatencyPlatform(1.0), num_clusters=0)
        with pytest.raises(ConfigurationError):
            FleetMember("", _FixedLatencyPlatform(1.0))


class TestCapacityPlanning:
    @staticmethod
    def _trace_builder(rate):
        return poisson_trace(rate, 60.0, seed=3)

    def test_capacity_increases_with_clusters(self):
        platform = _FixedLatencyPlatform(1.0)
        one = find_max_rate_under_slo(
            platform, self._trace_builder, slo_s=2.0, num_clusters=1
        )
        two = find_max_rate_under_slo(
            platform, self._trace_builder, slo_s=2.0, num_clusters=2
        )
        assert 0.0 < one.max_rate_per_s < two.max_rate_per_s
        # An M/M/1-ish queue with 1 s service saturates near 1 req/s.
        assert one.max_rate_per_s < 1.0
        assert one.report_at_capacity is not None
        assert one.report_at_capacity.response_time_percentile_s(95) <= 2.0

    def test_capacity_zero_when_slo_unmeetable(self):
        plan = find_max_rate_under_slo(
            _FixedLatencyPlatform(5.0), self._trace_builder, slo_s=1.0
        )
        assert plan.max_rate_per_s == 0.0
        assert plan.max_requests_per_hour == 0.0
        assert plan.report_at_capacity is None

    def test_capacity_caps_at_rate_bound_when_slo_always_holds(self):
        plan = find_max_rate_under_slo(
            _FixedLatencyPlatform(0.001),
            self._trace_builder,
            slo_s=10.0,
            rate_bounds=(0.5, 4.0),
        )
        assert plan.max_rate_per_s == pytest.approx(4.0)

    def test_invalid_search_parameters(self):
        platform = _FixedLatencyPlatform(1.0)
        with pytest.raises(ConfigurationError):
            find_max_rate_under_slo(platform, self._trace_builder, slo_s=0.0)
        with pytest.raises(ConfigurationError):
            find_max_rate_under_slo(
                platform, self._trace_builder, slo_s=1.0, rate_bounds=(2.0, 1.0)
            )
        with pytest.raises(ConfigurationError):
            find_max_rate_under_slo(
                platform, self._trace_builder, slo_s=1.0, relative_tolerance=0.0
            )

    def test_fleet_capacity_exceeds_single_member_capacity(self):
        # The SLO (6 s) is loose enough for the slow member (4 s service) to
        # contribute, so the fleet sustains more load than its fast half.
        fleet = _two_speed_fleet()
        fleet_plan = fleet_capacity_plan(fleet, self._trace_builder, slo_s=6.0)
        fast_plan = find_max_rate_under_slo(
            _FixedLatencyPlatform(1.0),
            self._trace_builder,
            slo_s=6.0,
            num_clusters=2,
            platform_name="fast",
        )
        assert fleet_plan.max_rate_per_s > fast_plan.max_rate_per_s
        assert fleet_plan.platform == "fast+slow"
        assert fleet_plan.scheduler == "fifo"

    def test_member_slower_than_the_slo_hurts_fleet_capacity(self):
        # Under a 2 s SLO every request spilled to the 4 s appliance is a
        # guaranteed violation, so the greedy balancer makes the fleet
        # *worse* than the fast appliance alone — adding hardware that
        # cannot meet the SLO is not free capacity.
        fleet = _two_speed_fleet()
        fleet_plan = fleet_capacity_plan(fleet, self._trace_builder, slo_s=2.0)
        fast_plan = find_max_rate_under_slo(
            _FixedLatencyPlatform(1.0),
            self._trace_builder,
            slo_s=2.0,
            num_clusters=2,
            platform_name="fast",
        )
        assert fleet_plan.max_rate_per_s < fast_plan.max_rate_per_s

    def test_abandonment_constraint_lowers_capacity(self):
        def impatient_builder(rate):
            return with_service_levels(
                poisson_trace(rate, 60.0, seed=3), patience_s=1.5
            )

        platform = _FixedLatencyPlatform(1.0)
        lax = find_max_rate_under_slo(
            platform, impatient_builder, slo_s=3.0, max_abandonment_rate=0.5
        )
        strict = find_max_rate_under_slo(
            platform, impatient_builder, slo_s=3.0, max_abandonment_rate=0.0
        )
        assert strict.max_rate_per_s <= lax.max_rate_per_s


class TestAnalysisDrivers:
    def test_run_scheduler_comparison_on_test_double(self):
        result = run_scheduler_comparison(
            _FixedLatencyPlatform(1.0),
            arrival_rate_per_s=1.5,
            duration_s=40.0,
            num_clusters=1,
        )
        assert set(result.reports) == {"fifo", "sjf", "priority", "deadline"}
        assert all(
            r.num_requests + r.num_abandoned == result.trace_length
            for r in result.reports.values()
        )
        assert result.best_policy_by_p95() in result.reports

    def test_best_policy_cannot_win_by_shedding_load(self):
        # Overload with a tight SLO: the deadline scheduler abandons most of
        # the trace as infeasible and shows a tiny p95 over its survivors.
        # The ranking must count abandoned requests as infinite response
        # time, so FIFO (which served everyone, however slowly) wins.
        trace = with_service_levels(poisson_trace(2.0, 60.0, seed=5), slo_s=2.0)
        result = run_scheduler_comparison(
            _FixedLatencyPlatform(1.0),
            num_clusters=1,
            policies=("fifo", "deadline"),
            trace=trace,
        )
        deadline = result.reports["deadline"]
        assert deadline.abandonment_rate > 0.05
        assert deadline.response_time_percentile_s(95) < result.reports[
            "fifo"
        ].response_time_percentile_s(95)
        assert result.best_policy_by_p95() == "fifo"
