"""Unit tests for repro.utils.units."""

import pytest

from repro.utils import units


class TestByteConversions:
    def test_bytes_to_gib(self):
        assert units.bytes_to_gib(units.GIBI) == pytest.approx(1.0)
        assert units.bytes_to_gib(8 * units.GIBI) == pytest.approx(8.0)

    def test_bytes_to_mib(self):
        assert units.bytes_to_mib(units.MEBI) == pytest.approx(1.0)

    def test_gbps_round_trip(self):
        bytes_per_second = units.gbps_to_bytes_per_second(100.0)
        assert bytes_per_second == pytest.approx(12.5e9)
        assert units.bytes_per_second_to_gbps(bytes_per_second) == pytest.approx(100.0)


class TestCycleConversions:
    def test_cycles_to_seconds_at_200mhz(self):
        assert units.cycles_to_seconds(200_000_000, 200e6) == pytest.approx(1.0)

    def test_seconds_to_cycles_inverse(self):
        cycles = 12_345.0
        seconds = units.cycles_to_seconds(cycles, 200e6)
        assert units.seconds_to_cycles(seconds, 200e6) == pytest.approx(cycles)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(100, 0)
        with pytest.raises(ValueError):
            units.seconds_to_cycles(1.0, -1)


class TestTimeConversions:
    def test_seconds_to_ms(self):
        assert units.seconds_to_ms(0.25) == pytest.approx(250.0)

    def test_ms_to_seconds_round_trip(self):
        assert units.ms_to_seconds(units.seconds_to_ms(3.5)) == pytest.approx(3.5)

    def test_seconds_to_us(self):
        assert units.seconds_to_us(1e-6) == pytest.approx(1.0)
