"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import Calibration
from repro.core.mpu import MPUModel
from repro.core.router import RouterModel
from repro.core.tiling import TilingConfig
from repro.core.vpu import VPUModel
from repro.fpga.aurora import AuroraLinkModel
from repro.isa.instructions import MatrixInstruction, RouterInstruction, VectorInstruction
from repro.isa.opcodes import MatrixOpcode, RouterOpcode, VectorOpcode
from repro.model import gelu
from repro.model.layers import causal_mask, softmax
from repro.utils.fp16 import to_fp16
from repro.workloads import Workload

# Keep hypothesis fast and deterministic inside the suite.
DEFAULT_SETTINGS = settings(max_examples=50, deadline=None)


class TestNumericProperties:
    @DEFAULT_SETTINGS
    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=64))
    def test_softmax_is_a_probability_distribution(self, values):
        row = np.array([values], dtype=np.float32)
        result = softmax(row)
        assert np.all(result >= 0)
        assert float(result.sum()) == pytest.approx(1.0, abs=1e-4)

    @DEFAULT_SETTINGS
    @given(st.lists(st.floats(-8, 8), min_size=1, max_size=128))
    def test_lut_gelu_tracks_tanh_gelu(self, values):
        x = np.array(values, dtype=np.float32)
        error = np.abs(gelu.gelu_lut(x) - gelu.gelu_tanh(x))
        assert float(error.max()) < 2e-3

    @DEFAULT_SETTINGS
    @given(st.floats(-60000, 60000))
    def test_fp16_round_trip_error_bounded(self, value):
        rounded = float(to_fp16(value))
        # binary16 has ~11 bits of mantissa: relative error < 2^-10.
        assert abs(rounded - value) <= max(abs(value) * 2**-10, 6.2e-5)

    @DEFAULT_SETTINGS
    @given(st.integers(1, 64), st.integers(1, 64))
    def test_causal_mask_counts(self, query_len, key_len):
        if query_len > key_len:
            return
        mask = causal_mask(query_len, key_len)
        offset = key_len - query_len
        # Row i allows exactly offset + i + 1 positions.
        for i in range(query_len):
            assert int(mask[i].sum()) == offset + i + 1


class TestTilingProperties:
    @DEFAULT_SETTINGS
    @given(st.integers(1, 4096), st.integers(1, 4096))
    def test_tiles_cover_matrix(self, in_dim, out_dim):
        tiling = TilingConfig(64, 16)
        tiles = tiling.tiles_for(in_dim, out_dim)
        assert tiles * tiling.d * tiling.l >= in_dim * out_dim
        assert (tiles - math.ceil(in_dim / 64) * math.ceil(out_dim / 16)) == 0

    @DEFAULT_SETTINGS
    @given(st.integers(1, 2048), st.integers(1, 2048))
    def test_utilization_bounded(self, in_dim, out_dim):
        utilization = TilingConfig(64, 16).utilization(in_dim, out_dim)
        assert 0.0 < utilization <= 1.0

    @DEFAULT_SETTINGS
    @given(st.sampled_from([(8, 128), (16, 64), (32, 32), (64, 16), (128, 8)]),
           st.integers(1, 512), st.integers(1, 512))
    def test_padding_never_reduces_tiles(self, point, in_dim, out_dim):
        tiling = TilingConfig(*point)
        assert tiling.tiles_for(in_dim + tiling.d, out_dim) > tiling.tiles_for(in_dim, out_dim)


class TestTimingMonotonicity:
    @DEFAULT_SETTINGS
    @given(st.integers(1, 8), st.integers(64, 2048), st.integers(16, 1024))
    def test_matrix_occupancy_monotone_in_rows(self, rows, in_dim, out_dim):
        mpu = MPUModel()
        small = MatrixInstruction(MatrixOpcode.CONV1D, dst="y", input_operand="x",
                                  weight_operand="w", rows=rows, in_dim=in_dim,
                                  out_dim=out_dim)
        big = MatrixInstruction(MatrixOpcode.CONV1D, dst="y", input_operand="x",
                                weight_operand="w", rows=rows + 1, in_dim=in_dim,
                                out_dim=out_dim)
        assert (
            mpu.instruction_timing(big).occupancy_cycles
            >= mpu.instruction_timing(small).occupancy_cycles
        )

    @DEFAULT_SETTINGS
    @given(st.floats(0.1, 1.0), st.floats(0.1, 1.0))
    def test_matrix_time_monotone_in_hbm_efficiency(self, eff_a, eff_b):
        lower, higher = sorted((eff_a, eff_b))
        instr = MatrixInstruction(MatrixOpcode.CONV1D, dst="y", input_operand="x",
                                  weight_operand="w", rows=1, in_dim=1536, out_dim=384)
        slow = MPUModel(calibration=Calibration(hbm_efficiency=lower))
        fast = MPUModel(calibration=Calibration(hbm_efficiency=higher))
        assert (
            fast.instruction_timing(instr).occupancy_cycles
            <= slow.instruction_timing(instr).occupancy_cycles + 1e-9
        )

    @DEFAULT_SETTINGS
    @given(st.integers(1, 8192))
    def test_vector_occupancy_monotone_in_length(self, length):
        vpu = VPUModel()
        shorter = VectorInstruction(VectorOpcode.ADD, dst="y", src1="a", src2="b",
                                    length=length)
        longer = VectorInstruction(VectorOpcode.ADD, dst="y", src1="a", src2="b",
                                   length=length + 64)
        assert (
            vpu.instruction_timing(longer).occupancy_cycles
            >= vpu.instruction_timing(shorter).occupancy_cycles
        )

    @DEFAULT_SETTINGS
    @given(st.integers(2, 8), st.integers(64, 65536))
    def test_ring_sync_scales_with_devices_and_payload(self, num_devices, payload):
        smaller = RouterModel(num_devices=num_devices)
        larger = RouterModel(num_devices=num_devices + 1)
        sync = RouterInstruction(RouterOpcode.SYNC, dst="d", src="s",
                                 payload_elements=payload)
        assert (
            larger.instruction_timing(sync).occupancy_cycles
            >= smaller.instruction_timing(sync).occupancy_cycles
        )

    @DEFAULT_SETTINGS
    @given(st.integers(0, 10**7), st.integers(2, 8))
    def test_all_gather_never_negative(self, payload_bytes, num_devices):
        link = AuroraLinkModel()
        assert link.ring_all_gather_seconds(payload_bytes, num_devices) >= 0.0


class TestWorkloadProperties:
    @DEFAULT_SETTINGS
    @given(st.integers(1, 1024), st.integers(1, 1024))
    def test_workload_invariants(self, inputs, outputs):
        workload = Workload(inputs, outputs)
        assert workload.total_tokens == inputs + outputs
        assert workload.generation_iterations == outputs - 1
        assert workload.label == f"[{inputs}:{outputs}]"
