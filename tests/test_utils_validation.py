"""Unit tests for repro.utils.validation and the exception hierarchy."""

import pytest

from repro import errors
from repro.utils import validation


class TestCheckers:
    def test_check_positive_accepts_positive(self):
        assert validation.check_positive("x", 3.5) == 3.5

    def test_check_positive_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            validation.check_positive("x", 0)
        with pytest.raises(ValueError):
            validation.check_positive("x", -1)

    def test_check_non_negative(self):
        assert validation.check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            validation.check_non_negative("x", -0.1)

    def test_check_in_range(self):
        assert validation.check_in_range("x", 0.5, 0.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            validation.check_in_range("x", 1.5, 0.0, 1.0)

    def test_check_one_of(self):
        assert validation.check_one_of("mode", "a", ["a", "b"]) == "a"
        with pytest.raises(ValueError):
            validation.check_one_of("mode", "c", ["a", "b"])

    def test_check_divisible(self):
        assert validation.check_divisible("n", 24, 4) == 24
        with pytest.raises(ValueError):
            validation.check_divisible("n", 25, 4)
        with pytest.raises(ValueError):
            validation.check_divisible("n", 25, 0)

    def test_check_same_length(self):
        validation.check_same_length("a", [1, 2], "b", [3, 4])
        with pytest.raises(ValueError):
            validation.check_same_length("a", [1], "b", [1, 2])


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc in (
            errors.ConfigurationError,
            errors.PartitioningError,
            errors.CompilationError,
            errors.ProgramValidationError,
            errors.ExecutionError,
            errors.ResourceExhaustedError,
            errors.CalibrationError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_errors_are_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.CompilationError("boom")
