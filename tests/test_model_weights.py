"""Unit tests for repro.model.weights (synthetic weight generation)."""

import numpy as np
import pytest

from repro.model.config import GPT2_TEST_SMALL, GPT2_TEST_TINY
from repro.model.weights import generate_layer_weights, generate_weights


class TestShapes:
    def test_embedding_shapes(self, tiny_weights):
        config = GPT2_TEST_TINY
        assert tiny_weights.wte.shape == (config.vocab_size, config.n_embd)
        assert tiny_weights.wpe.shape == (config.n_positions, config.n_embd)

    def test_layer_count(self, tiny_weights):
        assert len(tiny_weights.layers) == GPT2_TEST_TINY.n_layer

    def test_layer_shapes(self, tiny_weights):
        config = GPT2_TEST_TINY
        layer = tiny_weights.layers[0]
        assert layer.w_qkv.shape == (config.n_embd, 3 * config.n_embd)
        assert layer.w_attn_proj.shape == (config.n_embd, config.n_embd)
        assert layer.w_ffn1.shape == (config.n_embd, config.ffn_dim)
        assert layer.w_ffn2.shape == (config.ffn_dim, config.n_embd)
        assert layer.ln1_gamma.shape == (config.n_embd,)

    def test_parameter_count_matches_config(self, tiny_weights):
        assert tiny_weights.parameter_count() == GPT2_TEST_TINY.total_parameter_count()


class TestDeterminismAndScale:
    def test_same_seed_same_weights(self):
        first = generate_weights(GPT2_TEST_TINY, seed=3)
        second = generate_weights(GPT2_TEST_TINY, seed=3)
        np.testing.assert_array_equal(first.wte, second.wte)
        np.testing.assert_array_equal(first.layers[0].w_qkv, second.layers[0].w_qkv)

    def test_different_seed_different_weights(self):
        first = generate_weights(GPT2_TEST_TINY, seed=3)
        second = generate_weights(GPT2_TEST_TINY, seed=4)
        assert not np.array_equal(first.wte, second.wte)

    def test_initialization_scale(self):
        weights = generate_weights(GPT2_TEST_SMALL, seed=0)
        std = float(np.std(weights.layers[0].w_qkv))
        assert 0.015 < std < 0.025  # GPT-2 uses std 0.02

    def test_residual_projections_scaled_down(self):
        weights = generate_weights(GPT2_TEST_SMALL, seed=0)
        qkv_std = float(np.std(weights.layers[0].w_qkv))
        proj_std = float(np.std(weights.layers[0].w_attn_proj))
        assert proj_std < qkv_std

    def test_layer_norms_initialized_to_identity(self, tiny_weights):
        layer = tiny_weights.layers[0]
        np.testing.assert_array_equal(layer.ln1_gamma, np.ones_like(layer.ln1_gamma))
        np.testing.assert_array_equal(layer.ln1_beta, np.zeros_like(layer.ln1_beta))


class TestCasting:
    def test_astype_fp16(self, tiny_weights):
        half = tiny_weights.astype(np.float16)
        assert half.wte.dtype == np.float16
        assert half.layers[0].w_ffn1.dtype == np.float16
        # Original stays float32.
        assert tiny_weights.wte.dtype == np.float32

    def test_astype_preserves_parameter_count(self, tiny_weights):
        half = tiny_weights.astype(np.float16)
        assert half.parameter_count() == tiny_weights.parameter_count()

    def test_generate_layer_weights_independent_rng_stream(self):
        rng = np.random.default_rng(0)
        first = generate_layer_weights(GPT2_TEST_TINY, rng)
        second = generate_layer_weights(GPT2_TEST_TINY, rng)
        assert not np.array_equal(first.w_qkv, second.w_qkv)
