"""Tests for the MPU/VPU/DMA/Router timing unit models."""

import pytest

from repro.core.calibration import Calibration, IDEAL_CALIBRATION
from repro.core.dma import DMAModel
from repro.core.mpu import MPUModel
from repro.core.router import RouterModel
from repro.core.tiling import TilingConfig
from repro.core.vpu import VPUModel
from repro.isa.instructions import (
    DMAInstruction,
    MatrixInstruction,
    RouterInstruction,
    VectorInstruction,
)
from repro.isa.opcodes import DMAOpcode, MatrixOpcode, MemorySpace, RouterOpcode, VectorOpcode


def _conv(rows=1, in_dim=1536, out_dim=384):
    return MatrixInstruction(MatrixOpcode.CONV1D, dst="y", input_operand="x",
                             weight_operand="w", rows=rows, in_dim=in_dim,
                             out_dim=out_dim)


class TestMPUTiming:
    def test_large_conv1d_is_memory_bound(self):
        mpu = MPUModel()
        timing = mpu.instruction_timing(_conv())
        assert timing.is_memory_bound
        assert timing.stream_cycles > timing.compute_cycles

    def test_ideal_calibration_balances_compute_and_streaming(self):
        # One d x l tile is exactly one HBM beat, so at 100% streaming
        # efficiency compute and memory are balanced by construction.
        mpu = MPUModel(calibration=IDEAL_CALIBRATION)
        timing = mpu.instruction_timing(_conv())
        assert timing.compute_cycles == pytest.approx(timing.stream_cycles, rel=1e-6)

    def test_occupancy_scales_linearly_with_rows(self):
        mpu = MPUModel(calibration=IDEAL_CALIBRATION)
        one = mpu.instruction_timing(_conv(rows=1)).occupancy_cycles
        four = mpu.instruction_timing(_conv(rows=4)).occupancy_cycles
        assert four == pytest.approx(4 * one, rel=0.02)

    def test_lower_hbm_efficiency_means_more_cycles(self):
        fast = MPUModel(calibration=Calibration(hbm_efficiency=0.9))
        slow = MPUModel(calibration=Calibration(hbm_efficiency=0.45))
        assert (
            slow.instruction_timing(_conv()).occupancy_cycles
            > fast.instruction_timing(_conv()).occupancy_cycles
        )

    def test_peak_gflops(self):
        assert MPUModel().peak_gflops == pytest.approx(2 * 1024 * 200e6 / 1e9)

    def test_dsp_count(self):
        assert MPUModel().dsp_count == 3 * 64 * 16

    def test_small_attention_matrices_pay_pipeline_drain(self):
        mpu = MPUModel()
        score = MatrixInstruction(MatrixOpcode.MASKED_MM, dst="s", input_operand="q",
                                  weight_operand="k", rows=1, in_dim=64, out_dim=64)
        timing = mpu.instruction_timing(score)
        assert timing.occupancy_cycles > mpu.calibration.matrix_issue_cycles + 4

    def test_effective_gflops_below_peak(self):
        mpu = MPUModel()
        assert mpu.effective_gflops(_conv()) < mpu.peak_gflops


class TestVPUTiming:
    def test_wide_vector_takes_more_cycles(self):
        vpu = VPUModel()
        short = VectorInstruction(VectorOpcode.ADD, dst="y", src1="a", src2="b", length=64)
        long = VectorInstruction(VectorOpcode.ADD, dst="y", src1="a", src2="b", length=6144)
        assert (
            vpu.instruction_timing(long).occupancy_cycles
            > vpu.instruction_timing(short).occupancy_cycles
        )

    def test_load_uses_bypass_and_is_cheap(self):
        vpu = VPUModel()
        load = VectorInstruction(VectorOpcode.LOAD, dst="g", src1="gamma", length=1536)
        add = VectorInstruction(VectorOpcode.ADD, dst="y", src1="a", src2="b", length=1536)
        assert (
            vpu.instruction_timing(load).occupancy_cycles
            < vpu.instruction_timing(add).occupancy_cycles
        )

    def test_rows_multiply_occupancy(self):
        vpu = VPUModel(calibration=IDEAL_CALIBRATION)
        one = VectorInstruction(VectorOpcode.MUL, dst="y", src1="a", src2="b",
                                length=1536, rows=1)
        many = VectorInstruction(VectorOpcode.MUL, dst="y", src1="a", src2="b",
                                 length=1536, rows=8)
        assert vpu.instruction_timing(many).occupancy_cycles > 4 * vpu.instruction_timing(one).occupancy_cycles

    def test_throughput(self):
        assert VPUModel().throughput_elements_per_second() == pytest.approx(64 * 200e6)


class TestDMATiming:
    def test_weight_prefetch_costs_only_setup(self):
        dma = DMAModel()
        prefetch = DMAInstruction(DMAOpcode.LOAD_WEIGHT, dst="buf", src="w",
                                  size_bytes=10**7, memory=MemorySpace.HBM)
        timing = dma.instruction_timing(prefetch)
        assert timing.occupancy_cycles == pytest.approx(dma.calibration.dma_setup_cycles)

    def test_kv_store_charged_at_hbm_write_bandwidth(self):
        dma = DMAModel()
        small = DMAInstruction(DMAOpcode.STORE_KV, dst="kv", src="v", size_bytes=128)
        large = DMAInstruction(DMAOpcode.STORE_KV, dst="kv", src="v", size_bytes=1_000_000)
        assert (
            dma.instruction_timing(large).occupancy_cycles
            > dma.instruction_timing(small).occupancy_cycles
        )

    def test_ddr_transfers_slower_than_hbm(self):
        dma = DMAModel()
        hbm = DMAInstruction(DMAOpcode.STORE_KV, dst="kv", src="v", size_bytes=100_000,
                             memory=MemorySpace.HBM)
        ddr = DMAInstruction(DMAOpcode.LOAD_EMBEDDING, dst="e", src="wte", size_bytes=100_000,
                             memory=MemorySpace.DDR)
        assert (
            dma.instruction_timing(ddr).occupancy_cycles
            > dma.instruction_timing(hbm).occupancy_cycles
        )


class TestRouterTiming:
    def _sync(self, elements=1536, rows=1):
        return RouterInstruction(RouterOpcode.SYNC, dst="full", src="part",
                                 payload_elements=elements, rows=rows)

    def test_single_device_sync_is_free(self):
        router = RouterModel(num_devices=1)
        assert router.instruction_timing(self._sync()).occupancy_cycles == 0.0

    def test_more_devices_more_hops(self):
        two = RouterModel(num_devices=2).instruction_timing(self._sync()).occupancy_cycles
        four = RouterModel(num_devices=4).instruction_timing(self._sync()).occupancy_cycles
        assert four > two > 0

    def test_payload_size_matters(self):
        router = RouterModel(num_devices=4)
        small = router.instruction_timing(self._sync(elements=1536)).occupancy_cycles
        large = router.instruction_timing(self._sync(elements=6144 * 64)).occupancy_cycles
        assert large > small

    def test_sync_seconds_order_of_magnitude(self):
        # An emb=1536 FP16 all-gather across 4 devices should take a handful
        # of microseconds — far less than a decoder layer, but not free.
        router = RouterModel(num_devices=4)
        seconds = router.sync_seconds(1536 * 2)
        assert 1e-6 < seconds < 50e-6
