"""Unit tests for repro.utils.fp16."""

import numpy as np
import pytest

from repro.utils import fp16


class TestToFp16:
    def test_returns_float16_dtype(self):
        result = fp16.to_fp16(np.array([1.0, 2.5, -3.25]))
        assert result.dtype == np.float16

    def test_rounds_to_half_precision_grid(self):
        # 1/3 is not representable in binary16; rounding must change the value.
        value = fp16.to_fp16(1.0 / 3.0)
        assert float(value) != 1.0 / 3.0
        assert abs(float(value) - 1.0 / 3.0) < 1e-3

    def test_overflow_saturates_to_inf(self):
        assert np.isinf(fp16.to_fp16(1e9))


class TestFp16Arithmetic:
    def test_matmul_matches_float32_within_tolerance(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(8, 16)).astype(np.float16)
        b = rng.normal(size=(16, 4)).astype(np.float16)
        reference = a.astype(np.float32) @ b.astype(np.float32)
        result = fp16.fp16_matmul(a, b)
        assert result.dtype == np.float16
        np.testing.assert_allclose(result.astype(np.float32), reference, atol=2e-2)

    def test_add_and_mul_round_to_fp16(self):
        a = np.array([1.0009765625], dtype=np.float32)
        b = np.array([1.0], dtype=np.float32)
        assert fp16.fp16_add(a, b).dtype == np.float16
        assert fp16.fp16_mul(a, b).dtype == np.float16


class TestQuantizationError:
    def test_zero_for_identical_arrays(self):
        data = np.arange(10, dtype=np.float32)
        assert fp16.quantization_error(data, data) == 0.0

    def test_positive_for_quantized_copy(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=1000).astype(np.float32) * 1e-3
        quantized = fp16.to_fp16(data).astype(np.float32)
        error = fp16.quantization_error(data, quantized)
        assert error > 0.0
        assert error < 1e-5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fp16.quantization_error(np.zeros(3), np.zeros(4))

    def test_empty_arrays(self):
        assert fp16.quantization_error(np.zeros(0), np.zeros(0)) == 0.0

    def test_constants_match_numpy(self):
        assert fp16.FP16_MAX == pytest.approx(65504.0)
        assert fp16.FP16_MIN_NORMAL == pytest.approx(6.103515625e-05)
