"""Tests for the rack/link network model and network-aware fleet serving.

The property suite checks invariants over random topologies; the tests here
pin exact behavior on hand-built scenarios: link arithmetic, model
validation, transfer pricing (the bit-exact oracle), the cross-rack latency
tax acceptance criterion, network-aware routing, link faults (severed and
degraded links), shape-aware batch gathering, and retained/streaming
report agreement.
"""

import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    ApplianceFleet,
    ApplianceServer,
    Degradation,
    DynamicBatching,
    FaultSchedule,
    FleetMember,
    NetworkLink,
    NetworkModel,
    Outage,
    ServiceRequest,
    ShapeAwareScheduler,
)
from repro.workloads import Workload
from serving_doubles import FixedLatencyPlatform

BYTES_PER_TOKEN = 4.0


def request(request_id, arrival_s, input_tokens=4, output_tokens=8, **kwargs):
    return ServiceRequest(
        request_id=request_id,
        arrival_time_s=arrival_s,
        workload=Workload(input_tokens, output_tokens),
        **kwargs,
    )


def two_rack_network(link: NetworkLink, hosts_per_rack: int = 1) -> NetworkModel:
    racks = {
        f"rack{rack}": tuple(
            f"rack{rack}-host{host}" for host in range(hosts_per_rack)
        )
        for rack in range(2)
    }
    return NetworkModel.star(racks, ingress="rack0", link=link)


def two_rack_fleet(
    link: NetworkLink | None,
    latency_s: float = 1.0,
    hosts_per_rack: int = 1,
    **kwargs,
) -> ApplianceFleet:
    """One fixed-latency host per rack (or more) behind a star network.

    ``link=None`` builds the same fleet with no network model at all.
    """
    members = [
        FleetMember(
            f"rack{rack}-host{host}", FixedLatencyPlatform(latency_s)
        )
        for rack in range(2)
        for host in range(hosts_per_rack)
    ]
    network = None if link is None else two_rack_network(link, hosts_per_rack)
    return ApplianceFleet(members, network=network, **kwargs)


# ------------------------------------------------------------------- links
class TestNetworkLink:
    def test_default_link_is_free(self):
        link = NetworkLink()
        assert link.is_free
        assert link.one_way_s(0.0) == 0.0
        assert link.one_way_s(1e12) == 0.0

    def test_one_way_arithmetic(self):
        link = NetworkLink(latency_s=0.01, bandwidth_bytes_per_s=1000.0)
        assert link.one_way_s(500.0) == pytest.approx(0.01 + 0.5)
        assert not link.is_free

    def test_latency_only_link_ignores_payload(self):
        link = NetworkLink(latency_s=0.25)
        assert link.one_way_s(1e9) == 0.25

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkLink(latency_s=-1.0)
        with pytest.raises(ConfigurationError):
            NetworkLink(bandwidth_bytes_per_s=0.0)
        with pytest.raises(ConfigurationError):
            NetworkLink().one_way_s(-1.0)


# ------------------------------------------------------------------- model
class TestNetworkModel:
    def test_star_links_every_non_ingress_rack(self):
        link = NetworkLink(latency_s=0.1)
        network = NetworkModel.star(
            {"a": ("m0",), "b": ("m1",), "c": ("m2",)}, link=link
        )
        assert network.ingress == "a"  # first rack by default
        assert network.link_names() == ("b", "c")
        assert network.link_for("m1") == link
        assert network.link_for("m0") is None
        assert network.link_name_for("m0") is None
        assert network.link_name_for("m2") == "c"

    def test_placement_queries(self):
        network = two_rack_network(NetworkLink(), hosts_per_rack=2)
        assert network.members == (
            "rack0-host0", "rack0-host1", "rack1-host0", "rack1-host1"
        )
        assert network.rack_of("rack1-host0") == "rack1"
        assert not network.is_cross_rack("rack0-host1")
        assert network.is_cross_rack("rack1-host1")
        assert network.cross_rack_members() == frozenset(
            {"rack1-host0", "rack1-host1"}
        )
        with pytest.raises(ConfigurationError):
            network.rack_of("unplaced")

    def test_missing_link_defaults_to_free(self):
        network = NetworkModel(
            racks={"a": ("m0",), "b": ("m1",)}, ingress="a"
        )
        assert network.link_for("m1") == NetworkLink()
        assert network.is_free

    def test_is_free_tracks_every_link(self):
        free = two_rack_network(NetworkLink())
        priced = two_rack_network(NetworkLink(latency_s=0.1))
        assert free.is_free
        assert not priced.is_free

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(racks={}, ingress="a")
        with pytest.raises(ConfigurationError):
            NetworkModel(racks={"a": ("m0",)}, ingress="zzz")
        with pytest.raises(ConfigurationError):  # duplicate placement
            NetworkModel(racks={"a": ("m0",), "b": ("m0",)}, ingress="a")
        with pytest.raises(ConfigurationError):  # link for unknown rack
            NetworkModel(
                racks={"a": ("m0",)},
                ingress="a",
                links={"b": NetworkLink()},
            )
        with pytest.raises(ConfigurationError):  # priced ingress link
            NetworkModel(
                racks={"a": ("m0",), "b": ("m1",)},
                ingress="a",
                links={"a": NetworkLink(latency_s=1.0)},
            )
        with pytest.raises(ConfigurationError):
            NetworkModel(
                racks={"a": ("m0",)}, ingress="a", bytes_per_token=-1.0
            )

    def test_transfer_pricing(self):
        link = NetworkLink(latency_s=0.5, bandwidth_bytes_per_s=100.0)
        network = NetworkModel.star(
            {"a": ("m0",), "b": ("m1",)},
            ingress="a",
            link=link,
            bytes_per_token=BYTES_PER_TOKEN,
        )
        workload = Workload(10, 20)
        # Ingress members pay exactly nothing.
        assert network.transfer_time_s("m0", workload) == 0.0
        # Off-rack: prompt ingress plus token egress, one latency each leg.
        expected = link.one_way_s(10 * BYTES_PER_TOKEN) + link.one_way_s(
            20 * BYTES_PER_TOKEN
        )
        assert network.transfer_time_s("m1", workload) == expected
        assert expected == pytest.approx(2 * 0.5 + (40.0 + 80.0) / 100.0)


# --------------------------------------------------------- fleet integration
class TestFleetNetworkServing:
    def test_build_time_placement_validation(self):
        members = [FleetMember("only", FixedLatencyPlatform(1.0))]
        with pytest.raises(ConfigurationError):  # member not placed
            ApplianceFleet(
                members,
                network=NetworkModel.star({"a": ("someone-else",)}),
            )
        with pytest.raises(ConfigurationError):  # network names a stranger
            ApplianceFleet(
                members,
                network=NetworkModel.star({"a": ("only", "stranger")}),
            )

    def test_records_carry_the_oracle_transfer_time(self):
        # Saturate one host per rack so dispatches land on both racks, and
        # check every record's transfer against the model's own pricing —
        # bitwise, not approximately: the simulator and the oracle must
        # evaluate the identical expression.
        link = NetworkLink(latency_s=0.05, bandwidth_bytes_per_s=1000.0)
        fleet = two_rack_fleet(link)
        network = fleet.network
        trace = [request(i, 0.1 * i) for i in range(10)]
        report = fleet.serve(trace)
        assert len(report.completed) == 10
        racks_used = {network.rack_of(c.appliance) for c in report.completed}
        assert racks_used == {"rack0", "rack1"}  # both racks actually served
        for completed in report.completed:
            expected = network.transfer_time_s(
                completed.appliance, completed.request.workload
            )
            assert completed.transfer_time_s == expected
            if network.is_cross_rack(completed.appliance):
                assert completed.transfer_time_s > 0.0
            else:
                assert completed.transfer_time_s == 0.0

    def test_report_transfer_accounting_matches_recompute(self):
        link = NetworkLink(latency_s=0.05, bandwidth_bytes_per_s=1000.0)
        fleet = two_rack_fleet(link)
        report = fleet.serve([request(i, 0.1 * i) for i in range(10)])
        transfers = [d.transfer_time_s for d in report.iter_dispatches()]
        cross = [
            d
            for d in report.iter_dispatches()
            if d.appliance in report.cross_rack_members
        ]
        assert report.total_transfer_time_s == pytest.approx(sum(transfers))
        assert report.mean_transfer_time_s == pytest.approx(
            sum(transfers) / len(transfers)
        )
        assert report.num_cross_rack_dispatches == len(cross)
        assert report.cross_rack_dispatch_fraction == pytest.approx(
            len(cross) / report.num_batches
        )
        assert report.cross_rack_members == frozenset({"rack1-host0"})

    def test_cross_rack_p99_pays_the_latency_tax(self):
        # The acceptance criterion: the identical trace on the identical
        # fleet, once with a priced link and once with a zero-cost network —
        # cross-rack dispatches pay strictly more at the tail.
        trace = [request(i, 0.1 * i) for i in range(20)]
        priced = two_rack_fleet(
            NetworkLink(latency_s=0.25, bandwidth_bytes_per_s=1000.0)
        ).serve(trace)
        free = two_rack_fleet(NetworkLink()).serve(trace)
        assert priced.num_cross_rack_dispatches > 0
        assert free.num_cross_rack_dispatches > 0
        assert priced.cross_rack_response_percentile_s(
            99.0
        ) > free.cross_rack_response_percentile_s(99.0)
        assert priced.total_transfer_time_s > 0.0
        assert free.total_transfer_time_s == 0.0

    def test_routing_is_network_aware(self):
        # At trivial load behind a slow link, the greedy earliest-finish
        # router keeps everything on the ingress rack: the remote unit is
        # idle but its transfer tax always loses to serving locally.
        fleet = two_rack_fleet(NetworkLink(latency_s=10.0))
        report = fleet.serve([request(i, 3.0 * i) for i in range(6)])
        assert {c.appliance for c in report.completed} == {"rack0-host0"}
        assert report.num_cross_rack_dispatches == 0
        assert report.cross_rack_response_percentile_s(99.0) == 0.0

    def test_zero_cost_network_matches_no_network(self):
        # A free star prices every transfer at exactly 0.0: the records must
        # be bit-identical to the same fleet with no network model at all.
        trace = [request(i, 0.3 * i) for i in range(15)]
        with_net = two_rack_fleet(NetworkLink(), hosts_per_rack=2).serve(trace)
        without = two_rack_fleet(None, hosts_per_rack=2).serve(trace)
        assert with_net.completed == without.completed
        assert with_net.abandoned == without.abandoned
        assert with_net.failed == without.failed
        assert with_net.makespan_s == without.makespan_s
        assert with_net.total_energy_joules == without.total_energy_joules
        # The only difference is that the network names its cross-rack set.
        assert without.cross_rack_members == frozenset()
        assert with_net.cross_rack_members == frozenset(
            {"rack1-host0", "rack1-host1"}
        )

    def test_no_network_reports_zero_network_stats(self):
        report = two_rack_fleet(None).serve([request(0, 0.0)])
        assert report.total_transfer_time_s == 0.0
        assert report.num_cross_rack_dispatches == 0
        assert report.cross_rack_dispatch_fraction == 0.0
        assert report.cross_rack_response_percentile_s(99.0) == 0.0
        assert report.downtime_by_link() == {}

    def test_streaming_mode_agrees_with_retained(self):
        link = NetworkLink(latency_s=0.05, bandwidth_bytes_per_s=1000.0)
        trace = [request(i, 0.1 * i) for i in range(12)]
        retained = two_rack_fleet(link).serve(trace)
        streaming = two_rack_fleet(link, retain_records=False).serve(trace)
        assert not streaming.completed  # records really were streamed away
        assert streaming.total_transfer_time_s == pytest.approx(
            retained.total_transfer_time_s
        )
        assert streaming.mean_transfer_time_s == pytest.approx(
            retained.mean_transfer_time_s
        )
        assert (
            streaming.num_cross_rack_dispatches
            == retained.num_cross_rack_dispatches
        )
        assert streaming.cross_rack_dispatch_fraction == pytest.approx(
            retained.cross_rack_dispatch_fraction
        )
        assert streaming.cross_rack_response_percentile_s(50.0) > 0.0


# -------------------------------------------------------------- link faults
class TestLinkFaults:
    LINK = NetworkLink(latency_s=0.1)

    def test_severed_link_blocks_new_dispatches_until_repair(self):
        # rack1's link is down 2..6: arrivals in the window queue for rack0
        # or wait; nothing *starts* on rack1 inside the window.
        fleet = two_rack_fleet(self.LINK)
        trace = [request(i, 0.5 * i) for i in range(16)]
        fleet.faults = FaultSchedule.scripted(
            Outage(start_s=2.0, duration_s=4.0, link="rack1")
        )
        report = fleet.serve(trace)
        assert report.num_failed == 0
        assert len(report.completed) == 16
        for completed in report.completed:
            if completed.appliance == "rack1-host0":
                assert not 2.0 < completed.start_time_s < 6.0

    def test_severed_link_lets_inflight_work_complete(self):
        # A partition is not a crash: the request running on rack1 when the
        # link drops at t=1 finishes normally (no kill, no retry).
        fleet = two_rack_fleet(self.LINK, latency_s=4.0)
        fleet.faults = FaultSchedule.scripted(
            Outage(start_s=1.0, duration_s=10.0, link="rack1")
        )
        # Two simultaneous arrivals: one lands on each rack at t=0.
        report = fleet.serve([request(0, 0.0), request(1, 0.0)])
        assert report.num_failed == 0
        assert sorted(c.appliance for c in report.completed) == [
            "rack0-host0", "rack1-host0"
        ]

    def test_downtime_is_accounted_per_link(self):
        fleet = two_rack_fleet(self.LINK)
        fleet.faults = FaultSchedule.scripted(
            Outage(start_s=1.0, duration_s=2.0, link="rack1")
        )
        report = fleet.serve([request(i, 0.5 * i) for i in range(12)])
        assert report.link_downtime == {"rack1": ((1.0, 3.0),)}
        assert report.downtime_by_link() == pytest.approx({"rack1": 2.0})
        # A down link is a partition, not a unit failure: unit availability
        # is untouched.
        assert report.unit_downtime == {}
        assert report.availability == 1.0

    def test_degraded_link_stretches_transfer_only(self):
        # 3x degradation on rack1's link over 0..100: compute time is
        # unchanged, the transfer term triples.
        fleet = two_rack_fleet(self.LINK)
        network = fleet.network
        fleet.faults = FaultSchedule.scripted(
            Degradation(start_s=0.0, duration_s=100.0, slowdown=3.0, link="rack1")
        )
        report = fleet.serve([request(i, 0.1 * i) for i in range(10)])
        base = {
            c.request.request_id: network.transfer_time_s(
                c.appliance, c.request.workload
            )
            for c in report.completed
        }
        for completed in report.completed:
            expected = 3.0 * base[completed.request.request_id]
            if completed.appliance == "rack1-host0":
                assert completed.transfer_time_s == pytest.approx(expected)
                assert (
                    completed.finish_time_s - completed.start_time_s
                ) == pytest.approx(1.0 + expected)
            else:
                assert completed.transfer_time_s == 0.0

    def test_link_target_requires_a_network(self):
        fleet = two_rack_fleet(None)
        fleet.faults = FaultSchedule.scripted(
            Outage(start_s=0.0, duration_s=1.0, link="rack1")
        )
        with pytest.raises(ConfigurationError, match="link"):
            fleet.serve([request(0, 0.0)])
        server = ApplianceServer(
            FixedLatencyPlatform(1.0),
            num_clusters=1,
            platform_name="solo",
            faults=FaultSchedule.scripted(
                Outage(start_s=0.0, duration_s=1.0, link="rack1")
            ),
        )
        with pytest.raises(ConfigurationError, match="link"):
            server.serve([request(0, 0.0)])

    def test_unknown_link_name_is_rejected(self):
        fleet = two_rack_fleet(self.LINK)
        fleet.faults = FaultSchedule.scripted(
            Outage(start_s=0.0, duration_s=1.0, link="rack9")
        )
        with pytest.raises(ConfigurationError):
            fleet.serve([request(0, 0.0)])


# --------------------------------------------------- shape-aware batching
class TestShapeAwareScheduler:
    def test_singleton_dispatch_is_fifo(self):
        queue = [request(0, 0.0), request(1, 1.0)]
        assert ShapeAwareScheduler().select(0.0, queue, lambda r: 1.0) == 0

    def test_batch_gathers_closest_output_lengths(self):
        queue = [
            request(0, 0.0, output_tokens=10),
            request(1, 0.1, output_tokens=50),
            request(2, 0.2, output_tokens=11),
            request(3, 0.3, output_tokens=49),
        ]
        policy = ShapeAwareScheduler()
        # Anchor is the oldest request (10 tokens); 11 is its closest mate.
        assert policy.select_batch(1.0, queue, lambda r: 1.0, 2) == [0, 2]
        # With more seats the next-closest shapes join, in arrival order.
        assert policy.select_batch(1.0, queue, lambda r: 1.0, 3) == [0, 2, 3]
        assert policy.select_batch(1.0, queue, lambda r: 1.0, 9) == [0, 1, 2, 3]

    def test_ties_break_toward_arrival_order(self):
        queue = [
            request(0, 0.0, output_tokens=10),
            request(1, 0.1, output_tokens=12),
            request(2, 0.2, output_tokens=8),
        ]
        # |12-10| == |8-10|: the earlier arrival wins the last seat.
        batch = ShapeAwareScheduler().select_batch(1.0, queue, lambda r: 1.0, 2)
        assert batch == [0, 1]

    def test_end_to_end_batches_share_similar_shapes(self):
        # Short and long generations arrive interleaved; shape-aware
        # gathering under dynamic batching groups like with like.
        from serving_doubles import BatchableTokenPlatform

        server = ApplianceServer(
            BatchableTokenPlatform(fixed_ms_per_token=100.0),
            num_clusters=1,
            platform_name="batchy",
            scheduler="shape",
            batch_policy=DynamicBatching(2, 0.05),
            max_batch_size=2,
        )
        trace = [
            # A warmup request keeps the unit busy so the four shaped
            # requests are all queued when the first batch gathers.
            request(0, 0.0, output_tokens=8),
            request(1, 0.1, output_tokens=4),
            request(2, 0.2, output_tokens=64),
            request(3, 0.3, output_tokens=5),
            request(4, 0.4, output_tokens=63),
        ]
        report = server.serve(trace)
        batches: dict[object, list[int]] = {}
        for completed in report.completed:
            if completed.request.request_id == 0:
                continue
            batches.setdefault(completed.batch_id, []).append(
                completed.request.workload.output_tokens
            )
        shapes = sorted(sorted(members) for members in batches.values())
        assert shapes == [[4, 5], [63, 64]]
