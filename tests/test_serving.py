"""Tests for the datacenter serving layer (traces, mixes, queueing simulator)."""

import pytest

from repro.baselines.gpu import GPUAppliance
from repro.core.appliance import DFXAppliance
from repro.errors import ConfigurationError
from repro.model.config import GPT2_345M
from repro.serving.requests import (
    CHATBOT_MIX,
    DATACENTER_MIX,
    ServiceRequest,
    WorkloadMix,
    bursty_trace,
    constant_trace,
    merge_traces,
    poisson_trace,
    with_service_levels,
)
from repro.serving.server import ApplianceServer, LatencyOracle, saturation_sweep
from repro.workloads import Workload

import numpy as np
from serving_doubles import FixedLatencyPlatform as _FixedLatencyPlatform


class TestTraces:
    def test_poisson_trace_is_sorted_and_bounded(self):
        trace = poisson_trace(arrival_rate_per_s=5.0, duration_s=10.0, seed=1)
        times = [request.arrival_time_s for request in trace]
        assert times == sorted(times)
        assert all(0 <= time < 10.0 for time in times)

    def test_poisson_trace_rate_roughly_respected(self):
        trace = poisson_trace(arrival_rate_per_s=10.0, duration_s=100.0, seed=2)
        assert 700 < len(trace) < 1300

    def test_poisson_trace_deterministic_per_seed(self):
        first = poisson_trace(2.0, 20.0, seed=7)
        second = poisson_trace(2.0, 20.0, seed=7)
        assert [r.arrival_time_s for r in first] == [r.arrival_time_s for r in second]

    def test_invalid_trace_parameters(self):
        with pytest.raises(ConfigurationError):
            poisson_trace(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            poisson_trace(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            constant_trace(-1.0, 5)
        with pytest.raises(ConfigurationError):
            ServiceRequest(0, -1.0, Workload(1, 1))

    def test_constant_trace(self):
        trace = constant_trace(2.0, 3, Workload(8, 8))
        assert [r.arrival_time_s for r in trace] == [0.0, 2.0, 4.0]


class TestWorkloadMix:
    def test_sampling_respects_support(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert CHATBOT_MIX.sample(rng) in CHATBOT_MIX.workloads

    def test_mean_output_tokens(self):
        mix = WorkloadMix("m", (Workload(1, 10), Workload(1, 30)), (1.0, 1.0))
        assert mix.mean_output_tokens() == pytest.approx(20.0)

    def test_invalid_mixes_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadMix("bad", (Workload(1, 1),), (1.0, 2.0))
        with pytest.raises(ConfigurationError):
            WorkloadMix("bad", (), ())
        with pytest.raises(ConfigurationError):
            WorkloadMix("bad", (Workload(1, 1),), (0.0,))

    def test_builtin_mixes_are_valid(self):
        for mix in (CHATBOT_MIX, DATACENTER_MIX):
            assert mix.probabilities().sum() == pytest.approx(1.0)

    def test_probabilities_cached_and_read_only(self):
        # Regression: ``sample`` used to renormalize the weights on every
        # draw; now the normalized vector is built once at construction.
        assert CHATBOT_MIX.probabilities() is CHATBOT_MIX.probabilities()
        assert not CHATBOT_MIX.probabilities().flags.writeable
        with pytest.raises(ValueError):
            CHATBOT_MIX.probabilities()[0] = 0.5

    def test_sampling_uses_cached_probabilities(self):
        mix = WorkloadMix("m", (Workload(1, 10), Workload(1, 30)), (3.0, 1.0))
        rng = np.random.default_rng(0)
        draws = [mix.sample(rng) for _ in range(400)]
        heavy = sum(1 for w in draws if w.output_tokens == 10)
        assert 240 < heavy < 360  # ~75% of 400


class TestServiceLevels:
    def test_with_service_levels_tags_without_changing_load(self):
        trace = constant_trace(1.0, 4)
        tagged = with_service_levels(
            trace, priority=2, slo_s=3.0, patience_s=9.0, service_class="chat"
        )
        assert [r.arrival_time_s for r in tagged] == [r.arrival_time_s for r in trace]
        assert all(r.priority == 2 for r in tagged)
        assert all(r.slo_s == 3.0 and r.patience_s == 9.0 for r in tagged)
        assert tagged[0].deadline_s == pytest.approx(3.0)
        assert tagged[1].abandon_time_s == pytest.approx(10.0)

    def test_untagged_request_never_abandons_or_violates(self):
        request = ServiceRequest(0, 1.0, Workload(1, 1))
        assert request.deadline_s == float("inf")
        assert request.abandon_time_s == float("inf")

    def test_invalid_service_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceRequest(0, 0.0, Workload(1, 1), slo_s=0.0)
        with pytest.raises(ConfigurationError):
            ServiceRequest(0, 0.0, Workload(1, 1), patience_s=-1.0)

    def test_merge_traces_sorts_and_renumbers(self):
        first = with_service_levels(constant_trace(2.0, 3), service_class="a")
        second = with_service_levels(
            constant_trace(2.0, 3, start_time_s=1.0), service_class="b"
        )
        merged = merge_traces(first, second)
        times = [r.arrival_time_s for r in merged]
        assert times == sorted(times)
        assert [r.request_id for r in merged] == list(range(6))
        assert [r.service_class for r in merged] == ["a", "b", "a", "b", "a", "b"]


class TestQueueingSimulator:
    def test_no_queueing_when_arrivals_are_sparse(self):
        server = ApplianceServer(_FixedLatencyPlatform(1.0), num_clusters=1)
        report = server.serve(constant_trace(interarrival_s=2.0, num_requests=5))
        assert report.mean_queueing_delay_s == pytest.approx(0.0)
        assert report.mean_response_time_s == pytest.approx(1.0)
        assert report.utilization == pytest.approx(5.0 / report.makespan_s, rel=1e-6)

    def test_queueing_builds_up_when_overloaded(self):
        server = ApplianceServer(_FixedLatencyPlatform(1.0), num_clusters=1)
        report = server.serve(constant_trace(interarrival_s=0.5, num_requests=10))
        assert report.mean_queueing_delay_s > 0.5
        # Utilization saturates at 1.0.
        assert report.utilization == pytest.approx(1.0, abs=0.05)

    def test_second_cluster_absorbs_the_overload(self):
        trace = constant_trace(interarrival_s=0.5, num_requests=10)
        one = ApplianceServer(_FixedLatencyPlatform(1.0), num_clusters=1).serve(trace)
        two = ApplianceServer(_FixedLatencyPlatform(1.0), num_clusters=2).serve(trace)
        assert two.mean_response_time_s < one.mean_response_time_s
        assert two.mean_queueing_delay_s == pytest.approx(0.0, abs=1e-9)

    def test_percentiles_monotone(self):
        server = ApplianceServer(_FixedLatencyPlatform(1.0), num_clusters=1)
        report = server.serve(constant_trace(0.5, 20))
        p50 = report.response_time_percentile_s(50)
        p95 = report.response_time_percentile_s(95)
        p99 = report.response_time_percentile_s(99)
        assert p50 <= p95 <= p99

    def test_energy_accounting(self):
        server = ApplianceServer(_FixedLatencyPlatform(2.0, power_watts=50.0))
        report = server.serve(constant_trace(10.0, 4))
        assert report.total_energy_joules == pytest.approx(4 * 2.0 * 50.0)
        assert report.energy_per_request_joules == pytest.approx(100.0)

    def test_empty_trace(self):
        report = ApplianceServer(_FixedLatencyPlatform(1.0)).serve([])
        assert report.num_requests == 0
        assert report.requests_per_hour == 0.0

    def test_invalid_cluster_count(self):
        with pytest.raises(ConfigurationError):
            ApplianceServer(_FixedLatencyPlatform(1.0), num_clusters=0)

    def test_makespan_measured_from_first_arrival(self):
        # Regression: the busy window used to start at t=0, understating
        # throughput and utilization for traces that start late.
        server = ApplianceServer(_FixedLatencyPlatform(1.0), num_clusters=1)
        report = server.serve(
            constant_trace(interarrival_s=2.0, num_requests=5, start_time_s=100.0)
        )
        # Busy window: first arrival t=100, last finish t=108+1=109.
        assert report.first_arrival_s == pytest.approx(100.0)
        assert report.makespan_s == pytest.approx(9.0)
        assert report.requests_per_hour == pytest.approx(5 / 9.0 * 3600.0)
        assert report.utilization == pytest.approx(5 / 9.0)

    def test_late_trace_matches_equivalent_early_trace(self):
        server = ApplianceServer(_FixedLatencyPlatform(1.0), num_clusters=1)
        early = server.serve(constant_trace(0.5, 10))
        late = server.serve(constant_trace(0.5, 10, start_time_s=1000.0))
        assert late.makespan_s == pytest.approx(early.makespan_s)
        assert late.utilization == pytest.approx(early.utilization)
        assert late.output_tokens_per_second == pytest.approx(
            early.output_tokens_per_second
        )

    def test_response_cache_invalidated_on_same_length_replacement(self):
        # Regression: the cache was keyed only on len(completed), so
        # replacing the list with a same-length list served stale numbers.
        server = ApplianceServer(_FixedLatencyPlatform(1.0), num_clusters=1)
        report = server.serve(constant_trace(interarrival_s=2.0, num_requests=4))
        assert report.mean_response_time_s == pytest.approx(1.0)
        import dataclasses

        report.completed = [
            dataclasses.replace(c, finish_time_s=c.finish_time_s + 1.0)
            for c in report.completed
        ]
        assert report.mean_response_time_s == pytest.approx(2.0)

    def test_queueing_delay_cached_like_response_times(self):
        server = ApplianceServer(_FixedLatencyPlatform(1.0), num_clusters=1)
        report = server.serve(constant_trace(0.5, 10))
        first = report._queueing_delays()
        assert report._queueing_delays() is first
        report.completed.append(report.completed[-1])
        assert report._queueing_delays() is not first
        report.invalidate_caches()
        assert report._response_cache is None and report._queueing_cache is None

    def test_batch_stats_cached_like_response_times(self):
        server = ApplianceServer(_FixedLatencyPlatform(1.0), num_clusters=1)
        report = server.serve(constant_trace(0.5, 10))
        sizes, gathers = report._batch_stats()
        assert report._batch_stats()[0] is sizes
        # The public accessor hands out a copy, never the cached array.
        assert report.batch_gather_delays_s() is not gathers
        report.completed.append(report.completed[-1])
        assert report._batch_stats()[0] is not sizes
        report.invalidate_caches()
        assert report._batch_cache is None

    def test_response_time_cache_reused_and_invalidated_on_append(self):
        server = ApplianceServer(_FixedLatencyPlatform(1.0), num_clusters=1)
        report = server.serve(constant_trace(interarrival_s=2.0, num_requests=5))
        # Repeated statistics reuse one lazily-built array.
        first = report._response_times()
        assert report._response_times() is first
        mean_before = report.mean_response_time_s
        # Appending a completed request invalidates the cache.
        late = report.completed[-1]
        report.completed.append(late)
        assert report._response_times() is not first
        assert report.num_requests == 6
        assert report.mean_response_time_s == pytest.approx(mean_before)


class TestReportEdgeCases:
    """Regression tests hardening ServingReport statistics at the edges."""

    def test_empty_trace_every_statistic_is_zero_or_empty(self):
        report = ApplianceServer(_FixedLatencyPlatform(1.0)).serve([])
        assert report.num_offered == 0
        assert report.mean_response_time_s == 0.0
        assert report.mean_queueing_delay_s == 0.0
        assert report.response_time_percentile_s(99) == 0.0
        assert report.requests_per_hour == 0.0
        assert report.output_tokens_per_second == 0.0
        assert report.utilization == 0.0
        assert report.abandonment_rate == 0.0
        assert report.slo_violation_rate == 0.0
        assert report.slo_attainment == 1.0
        assert report.energy_per_request_joules == 0.0
        assert report.service_classes() == []
        assert report.percentiles_by_class(95) == {}
        assert report.num_batches == 0
        assert report.mean_batch_size == 0.0
        assert report.batch_size_distribution() == {}
        assert report.batch_gather_delays_s().size == 0
        assert report.mean_batch_gather_delay_s == 0.0
        assert report.batch_gather_delay_percentile_s(99) == 0.0

    def test_single_request_statistics(self):
        report = ApplianceServer(_FixedLatencyPlatform(2.0)).serve(
            [ServiceRequest(0, 5.0, Workload(4, 8))]
        )
        assert report.num_requests == 1
        assert report.first_arrival_s == pytest.approx(5.0)
        assert report.makespan_s == pytest.approx(2.0)
        assert report.mean_response_time_s == pytest.approx(2.0)
        # Every percentile of a single sample is that sample.
        for percentile in (1, 50, 99):
            assert report.response_time_percentile_s(percentile) == pytest.approx(2.0)
        assert report.requests_per_hour == pytest.approx(1800.0)
        assert report.output_tokens_per_second == pytest.approx(4.0)
        assert report.utilization == pytest.approx(1.0)
        assert report.num_batches == 1
        assert report.mean_batch_size == pytest.approx(1.0)

    def test_zero_duration_busy_window_reports_zero_rates(self):
        # A zero-latency platform completes the only request at its arrival
        # instant: the busy window has zero width, so the rate statistics
        # must report 0 instead of dividing by it.
        report = ApplianceServer(_FixedLatencyPlatform(0.0), 1, "fixed").serve(
            [ServiceRequest(0, 1.0, Workload(1, 1))]
        )
        assert report.num_requests == 1
        assert report.makespan_s == 0.0
        assert report.requests_per_hour == 0.0
        assert report.output_tokens_per_second == 0.0
        assert report.utilization == 0.0
        assert report.utilization_by_appliance() == {"fixed": 0.0}
        assert report.mean_response_time_s == 0.0

    def test_percentiles_by_class_with_abandoned_only_class(self):
        # One class completes; the other abandons every request.  The
        # abandoned-only class must still appear (it was offered) with a
        # 0.0 percentile, not crash or be silently dropped.
        served = with_service_levels(
            constant_trace(0.0, 1), service_class="served"
        )
        impatient = with_service_levels(
            constant_trace(0.0, 2, start_time_s=0.0), patience_s=0.4,
            service_class="impatient"
        )
        report = ApplianceServer(_FixedLatencyPlatform(1.0)).serve(
            merge_traces(served, impatient)
        )
        # The first-dispatched request occupies the only cluster for 1 s;
        # the two impatient ones time out at 0.4 s.
        assert report.num_requests == 1
        assert report.num_abandoned == 2
        assert report.service_classes() == ["impatient", "served"]
        by_class = report.percentiles_by_class(95)
        assert by_class["impatient"] == 0.0
        assert by_class["served"] > 0.0


class TestBurstyTrace:
    def test_deterministic_per_seed(self):
        first = bursty_trace(8.0, 0.5, 60.0, seed=11)
        second = bursty_trace(8.0, 0.5, 60.0, seed=11)
        assert [r.arrival_time_s for r in first] == [
            r.arrival_time_s for r in second
        ]
        assert [r.workload for r in first] == [r.workload for r in second]
        different = bursty_trace(8.0, 0.5, 60.0, seed=12)
        assert [r.arrival_time_s for r in first] != [
            r.arrival_time_s for r in different
        ]

    def test_sorted_bounded_and_sequentially_numbered(self):
        trace = bursty_trace(10.0, 1.0, 30.0, seed=2)
        times = [r.arrival_time_s for r in trace]
        assert times == sorted(times)
        assert all(0 <= t < 30.0 for t in times)
        assert [r.request_id for r in trace] == list(range(len(trace)))

    def test_burst_and_idle_rates_separate(self):
        # With silent idle phases the trace must contain long gaps (idle)
        # and dense stretches (bursts): its per-window arrival counts are
        # overdispersed relative to a Poisson trace of the same mean rate.
        trace = bursty_trace(
            20.0, 0.0, 200.0, mean_burst_s=5.0, mean_idle_s=5.0, seed=7
        )
        times = np.array([r.arrival_time_s for r in trace])
        counts, _ = np.histogram(times, bins=np.arange(0.0, 201.0, 1.0))
        dispersion = counts.var() / counts.mean()
        assert dispersion > 2.0  # Poisson would be ~1
        # The mean rate sits between the idle and burst rates.
        assert 0.0 < len(trace) / 200.0 < 20.0

    def test_silent_idle_phases_have_no_arrivals(self):
        # idle_rate 0 with long idle phases: gaps longer than anything a
        # burst phase would produce must exist.
        trace = bursty_trace(
            50.0, 0.0, 100.0, mean_burst_s=2.0, mean_idle_s=10.0, seed=4
        )
        gaps = np.diff([r.arrival_time_s for r in trace])
        assert gaps.max() > 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            bursty_trace(0.0, 0.0, 10.0)
        with pytest.raises(ConfigurationError):
            bursty_trace(5.0, -1.0, 10.0)
        with pytest.raises(ConfigurationError):
            bursty_trace(5.0, 5.0, 10.0)  # no on-off separation
        with pytest.raises(ConfigurationError):
            bursty_trace(5.0, 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            bursty_trace(5.0, 1.0, 10.0, mean_burst_s=0.0)
        with pytest.raises(ConfigurationError):
            bursty_trace(5.0, 1.0, 10.0, mean_idle_s=-1.0)

    def test_compatible_with_service_levels_and_merge(self):
        bursty = with_service_levels(
            bursty_trace(10.0, 0.5, 20.0, seed=1), service_class="bursty",
            slo_s=5.0,
        )
        steady = with_service_levels(
            poisson_trace(1.0, 20.0, seed=2), service_class="steady"
        )
        merged = merge_traces(bursty, steady)
        assert len(merged) == len(bursty) + len(steady)
        assert [r.request_id for r in merged] == list(range(len(merged)))
        times = [r.arrival_time_s for r in merged]
        assert times == sorted(times)
        assert {r.service_class for r in merged} == {"bursty", "steady"}
        report = ApplianceServer(_FixedLatencyPlatform(0.1), 2).serve(merged)
        assert report.num_offered == len(merged)


class TestWithRealPlatformModels:
    def test_latency_oracle_caches_results(self):
        appliance = DFXAppliance(GPT2_345M, num_devices=1)
        oracle = LatencyOracle(appliance)
        first = oracle.result_for(Workload(32, 8))
        second = oracle.result_for(Workload(32, 8))
        assert first is second

    def test_dfx_appliance_serves_more_requests_than_gpu(self):
        trace = poisson_trace(arrival_rate_per_s=0.5, duration_s=60.0,
                              mix=CHATBOT_MIX, seed=3)
        dfx_report = ApplianceServer(
            DFXAppliance(GPT2_345M, num_devices=1), platform_name="dfx"
        ).serve(trace)
        gpu_report = ApplianceServer(
            GPUAppliance(GPT2_345M, num_devices=1), platform_name="gpu"
        ).serve(trace)
        assert dfx_report.mean_response_time_s < gpu_report.mean_response_time_s
        assert dfx_report.output_tokens_per_second > gpu_report.output_tokens_per_second

    def test_saturation_sweep_structure(self):
        platform = _FixedLatencyPlatform(0.5)
        reports = saturation_sweep(
            platform,
            trace_builder=lambda rate: poisson_trace(rate, 30.0, CHATBOT_MIX, seed=1),
            arrival_rates=[0.5, 4.0],
        )
        assert set(reports) == {0.5, 4.0}
        assert reports[4.0].mean_queueing_delay_s >= reports[0.5].mean_queueing_delay_s
