"""Tests for the DFX appliance end-to-end latency model."""

import pytest

from repro.core.appliance import DFXAppliance
from repro.core.calibration import IDEAL_CALIBRATION
from repro.errors import ConfigurationError
from repro.model.config import GPT2_1_5B, GPT2_345M
from repro.results import (
    DFX_BREAKDOWN_PHASES,
    PHASE_SELF_ATTENTION,
    PHASE_SYNC,
)
from repro.workloads import Workload


class TestRunBasics:
    def test_result_metadata(self, dfx_1_5b_4dev):
        result = dfx_1_5b_4dev.run(Workload(32, 4))
        assert result.platform == "dfx"
        assert result.model_name == "gpt2-1.5b"
        assert result.num_devices == 4
        assert result.total_power_watts == pytest.approx(180.0)

    def test_single_output_token_has_no_generation_stage(self, dfx_1_5b_4dev):
        result = dfx_1_5b_4dev.run(Workload(32, 1))
        assert result.generation.latency_ms == 0.0
        assert result.summarization.latency_ms > 0.0

    def test_latency_grows_with_output_tokens(self, dfx_1_5b_4dev):
        short = dfx_1_5b_4dev.run(Workload(32, 1)).latency_ms
        long = dfx_1_5b_4dev.run(Workload(32, 16)).latency_ms
        assert long > short

    def test_latency_grows_roughly_linearly_with_prompt_length(self, dfx_1_5b_4dev):
        # DFX streams the prompt through the single-token datapath, so the
        # summarization cost is ~linear in the prompt length (unlike the GPU).
        small = dfx_1_5b_4dev.run(Workload(32, 1)).summarization.latency_ms
        large = dfx_1_5b_4dev.run(Workload(128, 1)).summarization.latency_ms
        assert large / small == pytest.approx(4.0, rel=0.15)

    def test_context_overflow_rejected(self, dfx_1_5b_4dev):
        with pytest.raises(ConfigurationError):
            dfx_1_5b_4dev.run(Workload(1000, 100))

    def test_run_many_preserves_order(self, dfx_1_5b_4dev):
        workloads = [Workload(32, 1), Workload(32, 4)]
        results = dfx_1_5b_4dev.run_many(workloads)
        assert [r.workload for r in results] == workloads


class TestPaperScaleAgreement:
    """Coarse agreement with the paper's published DFX measurements."""

    def test_per_token_generation_latency_1_5b(self, dfx_1_5b_4dev):
        # Paper Fig. 14: ([32:256] - [32:1]) / 255 = ~6.9 ms per token.
        short = dfx_1_5b_4dev.run(Workload(32, 1)).latency_ms
        long = dfx_1_5b_4dev.run(Workload(32, 64)).latency_ms
        per_token = (long - short) / 63
        assert 5.0 < per_token < 9.0

    def test_32_64_latency_close_to_paper(self, dfx_1_5b_4dev):
        # Paper: [32:64] = 660.4 ms on the 1.5B model with 4 FPGAs.
        latency = dfx_1_5b_4dev.run(Workload(32, 64)).latency_ms
        assert latency == pytest.approx(660.4, rel=0.25)

    def test_345m_single_fpga_throughput_close_to_paper(self):
        # Paper Fig. 18: 93.10 tokens/s for the 345M model on 1 FPGA at 64:64.
        appliance = DFXAppliance(GPT2_345M, num_devices=1)
        tokens_per_second = appliance.run(Workload(64, 64)).tokens_per_second
        assert tokens_per_second == pytest.approx(93.10, rel=0.20)


class TestBreakdownAndEfficiency:
    def test_breakdown_contains_decoder_phases(self, dfx_1_5b_4dev):
        result = dfx_1_5b_4dev.run(Workload(32, 8))
        for phase in DFX_BREAKDOWN_PHASES:
            assert phase in result.breakdown_ms
        assert result.breakdown_ms[PHASE_SELF_ATTENTION] > 0

    def test_breakdown_sums_to_total_latency(self, dfx_1_5b_4dev):
        result = dfx_1_5b_4dev.run(Workload(32, 8))
        assert sum(result.breakdown_ms.values()) == pytest.approx(
            result.latency_ms, rel=0.02
        )

    def test_sync_share_vanishes_on_single_device(self):
        single = DFXAppliance(GPT2_345M, num_devices=1).run(Workload(32, 8))
        assert single.breakdown_ms.get(PHASE_SYNC, 0.0) == pytest.approx(0.0, abs=1e-6)

    def test_ideal_calibration_is_faster(self):
        workload = Workload(32, 8)
        real = DFXAppliance(GPT2_1_5B, 4).run(workload).latency_ms
        ideal = DFXAppliance(GPT2_1_5B, 4, calibration=IDEAL_CALIBRATION).run(workload).latency_ms
        assert ideal < real

    def test_gflops_constant_across_stages(self, dfx_1_5b_4dev):
        # Fig. 17's key DFX property: the same matrix-vector dataflow serves
        # both stages, so achieved GFLOP/s barely changes between them.
        result = dfx_1_5b_4dev.run(Workload(64, 64))
        assert result.summarization_gflops == pytest.approx(
            result.generation_gflops, rel=0.15
        )

    def test_per_token_generation_seconds_helper(self, dfx_1_5b_4dev):
        assert dfx_1_5b_4dev.per_token_generation_seconds(64) > 0


class TestBatchedRequestSeconds:
    def test_batch_one_matches_run_exactly(self, dfx_1_5b_4dev):
        workload = Workload(32, 16)
        single = dfx_1_5b_4dev.run(workload).latency_s
        batched = dfx_1_5b_4dev.batched_request_seconds(workload, batch=1)
        assert batched == pytest.approx(single, rel=1e-12)

    def test_cohort_latency_bounded_by_sequential(self, dfx_1_5b_4dev):
        workload = Workload(32, 16)
        single = dfx_1_5b_4dev.run(workload).latency_s
        for batch in (2, 4, 8):
            cohort = dfx_1_5b_4dev.batched_request_seconds(workload, batch)
            assert single < cohort < batch * single

    def test_aggregate_throughput_grows_with_batch(self, dfx_1_5b_4dev):
        workload = Workload(32, 16)
        tokens = workload.output_tokens
        previous = tokens / dfx_1_5b_4dev.run(workload).latency_s
        for batch in (2, 4, 8):
            seconds = dfx_1_5b_4dev.batched_request_seconds(workload, batch)
            aggregate = batch * tokens / seconds
            assert aggregate > previous
            previous = aggregate

    def test_context_window_still_enforced(self, dfx_1_5b_4dev):
        over = Workload(GPT2_1_5B.n_positions, 1)
        with pytest.raises(ConfigurationError):
            dfx_1_5b_4dev.batched_request_seconds(over, batch=2)
