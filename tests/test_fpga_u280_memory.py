"""Tests for the U280 spec and the HBM/DDR/PCIe channel models."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.memory import (
    DDRModel,
    HBMModel,
    PCIeModel,
    kv_cache_bytes,
    weights_fit_in_hbm,
)
from repro.fpga.u280 import DEFAULT_U280, ResourceBudget, U280Spec
from repro.model.config import GPT2_1_5B
from repro.parallel.partitioner import build_partition_plan


class TestU280Spec:
    def test_paper_figures(self):
        spec = DEFAULT_U280
        assert spec.kernel_frequency_hz == 200e6
        assert spec.memory_frequency_hz == 410e6
        assert spec.hbm_channels == 32
        assert spec.hbm_capacity_bytes == 8 * 2**30
        assert spec.hbm_peak_bandwidth == 460e9
        assert spec.ddr_peak_bandwidth == 38e9
        assert spec.num_slr == 3
        assert spec.board_power_watts == 45.0

    def test_hbm_streaming_matches_32x512_bits_per_cycle(self):
        spec = DEFAULT_U280
        assert spec.hbm_bytes_per_kernel_cycle == 32 * 512 // 8 == 2048
        # 2 KiB per cycle at 200 MHz = 409.6 GB/s, below the 460 GB/s peak.
        assert spec.hbm_streaming_bandwidth == pytest.approx(409.6e9)
        assert spec.hbm_streaming_bandwidth < spec.hbm_peak_bandwidth

    def test_resource_totals_match_fig13_percentages(self):
        # Fig. 13 reports 520K LUT = 39.93%, 3533 DSP = 39.15%, etc.
        resources = DEFAULT_U280.resources
        assert 520_000 / resources.lut == pytest.approx(0.3993, abs=0.002)
        assert 3533 / resources.dsp == pytest.approx(0.3915, abs=0.002)
        assert 1192 / resources.bram_36k == pytest.approx(0.5913, abs=0.002)
        assert 104 / resources.uram == pytest.approx(0.1083, abs=0.002)

    def test_slr_budget_is_a_third(self):
        slr = DEFAULT_U280.slr_resources
        assert slr.dsp == DEFAULT_U280.resources.dsp // 3

    def test_negative_resources_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceBudget(lut=-1, ff=0, bram_36k=0, uram=0, dsp=0)


class TestHBMModel:
    def test_effective_bandwidth_scales_with_efficiency(self):
        full = HBMModel(efficiency=1.0)
        half = HBMModel(efficiency=0.5)
        assert half.effective_bandwidth == pytest.approx(full.effective_bandwidth / 2)

    def test_stream_cycles_for_one_tile(self):
        hbm = HBMModel(efficiency=1.0)
        assert hbm.stream_cycles(2048, include_latency=False) == pytest.approx(1.0)

    def test_stream_includes_read_latency_once(self):
        hbm = HBMModel(efficiency=1.0, read_latency_cycles=64)
        assert hbm.stream_cycles(2048) == pytest.approx(65.0)

    def test_zero_bytes_is_free(self):
        assert HBMModel().stream_cycles(0) == 0.0

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ConfigurationError):
            HBMModel(efficiency=0.0)
        with pytest.raises(ConfigurationError):
            HBMModel(efficiency=1.2)


class TestDDRAndPCIe:
    def test_ddr_transfer_time_scales_with_bytes(self):
        ddr = DDRModel()
        assert ddr.transfer_cycles(2 * 10**6) > ddr.transfer_cycles(10**6)

    def test_ddr_invalid_efficiency(self):
        with pytest.raises(ConfigurationError):
            DDRModel(efficiency=0)

    def test_pcie_round_trip_floor(self):
        pcie = PCIeModel()
        assert pcie.transfer_seconds(0) == pytest.approx(pcie.round_trip_latency_s)
        assert pcie.transfer_seconds(16_000_000) > pcie.transfer_seconds(0)


class TestCapacityHelpers:
    def test_1_5b_partition_fits_hbm_with_4_devices(self):
        plan = build_partition_plan(GPT2_1_5B, 4)
        assert weights_fit_in_hbm(plan.device_weight_bytes())

    def test_kv_cache_bytes_formula(self):
        # 48 layers x 6 local heads x 64 dims x 1024 tokens x 2 tensors x 2 B.
        expected = 48 * 2 * 6 * 1024 * 64 * 2
        assert kv_cache_bytes(48, 6, 64, 1024) == expected

    def test_kv_cache_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            kv_cache_bytes(-1, 1, 1, 1)
