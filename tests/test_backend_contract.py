"""The shared backend-contract suite, run against every registered backend.

Every backend in the registry must honour the same contract:

* registry round-trip — ``make_backend(name)`` builds it and it knows its
  name;
* estimate sanity — positive latency, the workload echoed back,
  deterministic repeat calls;
* batched/unbatched consistency — a batch of one is *exactly* the
  singleton estimate (the passthrough the serving equivalence relies on);
* capabilities honesty — ``supports_batching`` and ``max_batch_size``
  describe what ``batched_estimate`` actually accepts, and
  ``generates_tokens`` backends really generate.

The equivalence classes at the bottom prove the serving stack (oracle,
server, fleet, batch cost model) is bit-identical through the adapters —
the old platform-model path and the new backend path produce the same
reports, record for record.
"""

import pytest

from repro.backends import (
    AnalyticBackend,
    BackendCapabilities,
    as_backend,
    available_backends,
    is_backend,
    make_backend,
    register_backend,
)
from repro.errors import ConfigurationError
from repro.model.config import GPT2_TEST_TINY
from repro.serving import (
    ApplianceFleet,
    ApplianceServer,
    BackendBatchCostModel,
    DynamicBatching,
    FleetMember,
    GPUBatchCostModel,
    LatencyOracle,
    ServiceRequest,
    poisson_trace,
)
from repro.workloads import Workload
from serving_doubles import (
    BatchableTokenPlatform as _BatchableTokenPlatform,
    FixedLatencyPlatform as _FixedLatencyPlatform,
)

WORKLOAD = Workload(8, 8)
BACKEND_NAMES = ("dfx", "dfx-4u", "dfx-sim", "gpu", "tpu")


@pytest.fixture(scope="module")
def backends():
    """One instance of every registered backend on the tiny test model."""
    return {name: make_backend(name, config=GPT2_TEST_TINY) for name in BACKEND_NAMES}


class TestRegistry:
    def test_registry_names(self):
        assert available_backends() == sorted(BACKEND_NAMES)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            make_backend("npu")
        with pytest.raises(ConfigurationError):
            make_backend(42)

    def test_instance_passthrough(self, backends):
        assert make_backend(backends["dfx"]) is backends["dfx"]

    def test_instance_passthrough_rejects_kwargs(self, backends):
        with pytest.raises(ConfigurationError):
            make_backend(backends["dfx"], devices=2)

    def test_register_backend_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            register_backend("dfx", lambda **kwargs: None)
        with pytest.raises(ConfigurationError):
            register_backend("", lambda **kwargs: None)

    def test_register_backend_round_trip(self):
        from repro.backends.registry import BACKENDS

        def factory(**kwargs):
            return as_backend(_FixedLatencyPlatform(1.0), name="fixed")

        register_backend("fixed-test", factory)
        try:
            backend = make_backend("fixed-test")
            assert backend.estimate(WORKLOAD).latency_s == pytest.approx(1.0)
        finally:
            del BACKENDS["fixed-test"]

    def test_preset_names_accepted(self):
        backend = make_backend("dfx", config="test-tiny")
        assert backend.appliance.config is GPT2_TEST_TINY


class TestCapabilitiesValidation:
    def test_dishonest_batching_declaration_rejected(self):
        with pytest.raises(ConfigurationError):
            BackendCapabilities(platform="x", supports_batching=True,
                                max_batch_size=1)
        with pytest.raises(ConfigurationError):
            BackendCapabilities(platform="x", supports_batching=False,
                                max_batch_size=4)
        with pytest.raises(ConfigurationError):
            BackendCapabilities(platform="x", max_batch_size=0)

    def test_as_backend_rejects_non_platform(self):
        with pytest.raises(ConfigurationError):
            as_backend(object())

    def test_as_backend_passthrough(self, backends):
        assert as_backend(backends["gpu"]) is backends["gpu"]

    def test_wrapper_without_batching_hook_cannot_claim_batching(self):
        with pytest.raises(ConfigurationError):
            AnalyticBackend(_FixedLatencyPlatform(1.0), max_batch_size=4)

    def test_uncapped_cost_model_serves_batches_beyond_any_guessed_cap(self):
        # Regression: the legacy GPU batching hook has no architectural
        # cap, so the wrapper must not invent one — an 80-request batch
        # priced through the shim worked before the protocol and must
        # keep working.
        platform = _BatchableTokenPlatform(fixed_ms_per_token=100.0)
        server = ApplianceServer(
            platform, 1, "batchable",
            batch_policy=DynamicBatching(80, 10.0), max_batch_size=80,
        )
        trace = [ServiceRequest(i, 0.0, Workload(1, 1)) for i in range(80)]
        report = server.serve(trace)
        assert report.batch_size_distribution() == {80: 1}

    def test_declared_cap_fails_at_build_time_not_mid_simulation(self):
        backend = make_backend("gpu", config=GPT2_TEST_TINY, max_batch_size=4)
        with pytest.raises(ConfigurationError):
            ApplianceServer(
                backend, batch_policy=DynamicBatching(8, 1.0), max_batch_size=8
            )
        with pytest.raises(ConfigurationError):
            ApplianceFleet(
                [FleetMember("gpu", backend, num_clusters=1, max_batch_size=8)]
            )
        # At or under the declared cap, the same backend builds fine.
        ApplianceServer(
            backend, batch_policy=DynamicBatching(4, 1.0), max_batch_size=4
        )


@pytest.mark.parametrize("name", BACKEND_NAMES)
class TestBackendContract:
    def test_knows_its_registry_name(self, backends, name):
        backend = backends[name]
        assert backend.name == name
        assert is_backend(backend)
        assert backend.capabilities().platform == name

    def test_estimate_sanity(self, backends, name):
        result = backends[name].estimate(WORKLOAD)
        assert result.workload == WORKLOAD
        assert result.latency_s > 0
        assert result.num_devices == backends[name].capabilities().num_devices

    def test_estimate_deterministic(self, backends, name):
        backend = backends[name]
        first = backend.estimate(WORKLOAD)
        second = backend.estimate(WORKLOAD)
        assert first.latency_s == second.latency_s
        assert first.energy_joules == second.energy_joules

    def test_energy_hook_honesty(self, backends, name):
        backend = backends[name]
        result = backend.estimate(WORKLOAD)
        if backend.capabilities().supports_energy:
            assert result.total_power_watts > 0
            assert result.energy_joules > 0

    def test_batch_of_one_is_the_singleton_estimate(self, backends, name):
        backend = backends[name]
        single = backend.estimate(WORKLOAD)
        for batch in (backend.batched_estimate([WORKLOAD]),
                      backend.batched_estimate([WORKLOAD], batch_size=1)):
            assert batch.batch_size == 1
            assert batch.workload == WORKLOAD
            assert batch.latency_s == single.latency_s
            assert batch.energy_joules == single.energy_joules

    def test_batched_estimate_matches_declared_capabilities(self, backends, name):
        backend = backends[name]
        capabilities = backend.capabilities()
        if not capabilities.supports_batching:
            with pytest.raises(ConfigurationError):
                backend.batched_estimate([WORKLOAD, WORKLOAD])
            return
        single = backend.estimate(WORKLOAD)
        batch = backend.batched_estimate([WORKLOAD, WORKLOAD])
        assert batch.batch_size == 2
        # A batch is slower than one request alone but faster than two in
        # sequence — otherwise batching would be free or pointless.
        assert single.latency_s <= batch.latency_s < 2 * single.latency_s
        # A declared (finite) cap must really be enforced; unbounded
        # backends (UNBOUNDED_BATCH_SIZE) have nothing to overflow.
        if capabilities.max_batch_size < 1024:
            with pytest.raises(ConfigurationError):
                backend.batched_estimate(
                    [WORKLOAD] * (capabilities.max_batch_size + 1)
                )

    def test_batched_estimate_priced_at_dominant_shape(self, backends, name):
        backend = backends[name]
        if not backend.capabilities().supports_batching:
            return
        mixed = backend.batched_estimate([Workload(8, 2), Workload(2, 8)])
        assert mixed.workload == Workload(8, 8)
        assert mixed.latency_s == backend.batched_estimate(
            [WORKLOAD, WORKLOAD]
        ).latency_s

    def test_batch_size_smaller_than_batch_rejected(self, backends, name):
        with pytest.raises(ConfigurationError):
            backends[name].batched_estimate([WORKLOAD, WORKLOAD], batch_size=1)
        with pytest.raises(ConfigurationError):
            backends[name].batched_estimate([WORKLOAD], batch_size=0)
        with pytest.raises(ConfigurationError):
            backends[name].batched_estimate([])

    def test_generates_tokens_honesty(self, backends, name):
        backend = backends[name]
        if not backend.capabilities().generates_tokens:
            assert not hasattr(backend, "generate")
            return
        generation = backend.generate([3, 1, 4], max_new_tokens=4)
        assert len(generation.output_token_ids) == 4
        assert generation.timing.workload == Workload(3, 4)

    def test_serves_a_trace_end_to_end(self, backends, name):
        trace = poisson_trace(2.0, 10.0, seed=1)
        report = ApplianceServer(backends[name], num_clusters=2).serve(trace)
        assert report.num_offered == len(trace)
        assert report.platform == name
        assert report.num_requests == len(trace)


class TestDFXSimBatchingHonesty:
    """dfx-sim really batches; the analytic dfx backends really don't."""

    def test_dfx_sim_declares_batching(self, backends):
        from repro.backends import UNBOUNDED_BATCH_SIZE

        capabilities = backends["dfx-sim"].capabilities()
        assert capabilities.supports_batching
        assert capabilities.max_batch_size == UNBOUNDED_BATCH_SIZE
        assert capabilities.generates_tokens

    def test_analytic_dfx_backends_stay_unbatched(self, backends):
        # The paper's appliance serves unbatched (Sec. III-A); only the
        # functional-sim backend grows the batched engine.
        for name in ("dfx", "dfx-4u"):
            capabilities = backends[name].capabilities()
            assert not capabilities.supports_batching
            assert capabilities.max_batch_size == 1

    def test_batch_priced_by_cohort_model_not_singleton(self, backends):
        backend = backends["dfx-sim"]
        single = backend.estimate(WORKLOAD)
        for size in (2, 4, 8):
            batch = backend.batched_estimate([WORKLOAD] * size)
            # Honest cohort pricing: slower than one request (per-stream KV
            # work is not amortized) but far cheaper than `size` sequential
            # requests (the weight stream is shared).
            assert single.latency_s < batch.latency_s < size * single.latency_s
            expected_s = backend._appliance.batched_request_seconds(WORKLOAD, size)
            assert batch.latency_s == pytest.approx(expected_s)

    def test_batched_energy_is_power_times_wall_clock(self, backends):
        backend = backends["dfx-sim"]
        single = backend.estimate(WORKLOAD)
        batch = backend.batched_estimate([WORKLOAD] * 4)
        power_watts = single.total_power_watts
        assert batch.energy_joules == pytest.approx(power_watts * batch.latency_s)

    def test_generate_batch_bit_identical_to_sequential(self, backends):
        backend = backends["dfx-sim"]
        prompts = [[1, 2, 3], [4, 5, 6], [7, 8, 9]]
        batched = backend.generate_batch(prompts, 4)
        assert batched.batch_size == 3
        assert batched.latency_s > 0
        assert batched.aggregate_tokens_per_second > 0
        sequential = [
            backend.generate(prompt, 4).output_token_ids for prompt in prompts
        ]
        assert batched.output_token_ids == sequential

    def test_batched_server_runs_dfx_sim_end_to_end(self, backends):
        report = ApplianceServer(
            backends["dfx-sim"],
            batch_policy=DynamicBatching(4, timeout_s=0.5),
            max_batch_size=4,
        ).serve(poisson_trace(3.0, 20.0, seed=5))
        assert report.num_requests > 0
        assert max(report.batch_size_distribution()) > 1


class TestServingEquivalence:
    """Oracle/server/fleet behavior is bit-identical through the adapters."""

    def _trace(self):
        return poisson_trace(1.5, 40.0, seed=21)

    def test_oracle_identical_through_wrapper(self):
        platform = _BatchableTokenPlatform(fixed_ms_per_token=700.0)
        direct = LatencyOracle(platform)
        wrapped = LatencyOracle(as_backend(platform))
        for workload in (Workload(1, 1), Workload(4, 9), Workload(64, 32)):
            assert direct.service_time_s(workload) == wrapped.service_time_s(workload)
            assert (direct.result_for(workload).energy_joules
                    == wrapped.result_for(workload).energy_joules)

    @pytest.mark.parametrize("backend_name", ["dfx", "gpu"])
    def test_server_identical_through_backend(self, backend_name):
        backend = make_backend(backend_name, config=GPT2_TEST_TINY)
        legacy = ApplianceServer(
            backend.platform, 2, platform_name=backend_name
        ).serve(self._trace())
        through_backend = ApplianceServer(backend, 2).serve(self._trace())
        assert through_backend.completed == legacy.completed
        assert through_backend.abandoned == legacy.abandoned
        assert through_backend.total_energy_joules == legacy.total_energy_joules
        assert through_backend.makespan_s == legacy.makespan_s
        assert through_backend.platform == legacy.platform

    def test_batched_server_identical_through_backend(self):
        platform = _BatchableTokenPlatform(fixed_ms_per_token=900.0,
                                           marginal_ms_per_token=40.0)
        policy = DynamicBatching(4, timeout_s=0.5)
        legacy = ApplianceServer(
            platform, 1, "batchable", batch_policy=policy, max_batch_size=4
        ).serve(self._trace())
        through_backend = ApplianceServer(
            as_backend(platform, name="batchable"), 1, "batchable",
            batch_policy=policy, max_batch_size=4,
        ).serve(self._trace())
        assert through_backend.completed == legacy.completed
        assert through_backend.total_energy_joules == legacy.total_energy_joules

    def test_backend_cost_model_matches_gpu_cost_model(self):
        platform = _BatchableTokenPlatform(fixed_ms_per_token=800.0,
                                           marginal_ms_per_token=25.0)
        legacy = GPUBatchCostModel(platform)
        generic = BackendBatchCostModel(as_backend(platform))
        workloads = [Workload(3, 7), Workload(9, 2), Workload(1, 5)]
        assert generic.batch_latency_s(workloads) == legacy.batch_latency_s(workloads)
        assert (generic.batch_energy_joules(workloads, 2.5)
                == legacy.batch_energy_joules(workloads, 2.5))
        for concurrency in (1, 2, 4):
            assert (generic.continuous_latency_s(WORKLOAD, concurrency)
                    == legacy.continuous_latency_s(WORKLOAD, concurrency))
            assert (generic.continuous_energy_joules(WORKLOAD, concurrency, 1.7)
                    == legacy.continuous_energy_joules(WORKLOAD, concurrency, 1.7))

    def test_fleet_identical_through_backends(self):
        fast = _FixedLatencyPlatform(0.8)
        batchy = _BatchableTokenPlatform(fixed_ms_per_token=600.0)
        policy = DynamicBatching(3, timeout_s=0.4)
        legacy = ApplianceFleet(
            [FleetMember("fast", fast, 1), FleetMember("batchy", batchy, 1, 3)],
            batch_policy=policy,
        ).serve(self._trace())
        through_backends = ApplianceFleet(
            [
                FleetMember("fast", as_backend(fast), 1),
                FleetMember("batchy", as_backend(batchy), 1, 3),
            ],
            batch_policy=policy,
        ).serve(self._trace())
        assert through_backends.completed == legacy.completed
        assert through_backends.abandoned == legacy.abandoned
        assert through_backends.total_energy_joules == legacy.total_energy_joules

    def test_custom_batched_energy_model_is_honored(self):
        """A backend whose batched energy is not power x wall clock keeps
        its own model in the serving report."""
        from repro.backends import BatchEstimate, dominant_workload

        class FlatEnergyBackend:
            """Batch energy is a flat 7 J regardless of size or latency."""

            name = "flat-energy"

            def estimate(self, workload):
                return _BatchableTokenPlatform().run(workload)

            def batched_estimate(self, workloads, batch_size=None):
                shape = dominant_workload(workloads)
                size = len(workloads) if batch_size is None else batch_size
                if size == 1:
                    result = self.estimate(shape)
                    return BatchEstimate(shape, 1, result.latency_s,
                                         result.energy_joules)
                latency = _BatchableTokenPlatform().batched_request_latency_ms(
                    shape, size) / 1e3
                return BatchEstimate(shape, size, latency, 7.0)

            def capabilities(self):
                from repro.backends import BackendCapabilities
                return BackendCapabilities(
                    platform=self.name, supports_batching=True, max_batch_size=8
                )

        costs = BackendBatchCostModel(FlatEnergyBackend())
        workloads = [Workload(1, 2), Workload(1, 3)]
        latency_s = costs.batch_latency_s(workloads)
        assert costs.batch_energy_joules(workloads, latency_s) == 7.0
        # An arbitrary wall clock bills the same draw model proportionally.
        assert costs.batch_energy_joules(workloads, latency_s / 2) == (
            pytest.approx(3.5)
        )

    def test_fleet_member_accepts_backend_names(self):
        fleet = ApplianceFleet(
            [FleetMember("dfx", make_backend("dfx", config=GPT2_TEST_TINY), 2)]
        )
        report = fleet.serve(poisson_trace(1.0, 10.0, seed=3))
        assert report.num_requests > 0
        assert fleet.backend_for("dfx").name == "dfx"
        with pytest.raises(ConfigurationError):
            fleet.backend_for("gpu")


class TestBatchingComparisonEquivalence:
    """The Sec. III-A tradeoff numbers are unchanged through the adapters."""

    def test_backend_and_platform_paths_agree(self):
        from repro.analysis import experiments
        from repro.baselines.gpu import GPUAppliance
        from repro.core.appliance import DFXAppliance

        kwargs = dict(
            num_devices=1, duration_s=40.0, low_rate_per_s=0.5,
            burst_rate_per_s=15.0, idle_rate_per_s=0.5,
            mean_burst_s=5.0, mean_idle_s=5.0, batch_timeout_s=1.0,
        )
        via_registry = experiments.run_batching_comparison(
            GPT2_TEST_TINY, **kwargs
        )
        via_platforms = experiments.run_batching_comparison(
            GPT2_TEST_TINY,
            dfx_backend=DFXAppliance(GPT2_TEST_TINY, num_devices=1),
            gpu_backend=GPUAppliance(GPT2_TEST_TINY, num_devices=1),
            **kwargs,
        )
        assert (via_registry.low_load_tail_latency_s()
                == via_platforms.low_load_tail_latency_s())
        assert (via_registry.high_load_tokens_per_second()
                == via_platforms.high_load_tokens_per_second())
        assert (via_registry.gpu_batching_throughput_gain
                == via_platforms.gpu_batching_throughput_gain)
        assert via_registry.dfx_wins_low_load_latency
