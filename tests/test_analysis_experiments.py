"""Tests for the per-figure experiment drivers (shape checks, not full runs).

The full-grid drivers are exercised by the benchmarks; here we verify their
structure and the paper-shape properties on reduced workload sets so the test
suite stays fast.
"""

import pytest

from repro.analysis import experiments
from repro.analysis.workload_presets import (
    EvaluationSetup,
    PAPER_EVALUATION_SETUPS,
    PRIMARY_SETUP,
    SCALABILITY_SETUP,
)
from repro.model.config import GPT2_345M, GPT2_TEST_TINY
from repro.results import PHASE_FFN, PHASE_LAYERNORM, PHASE_RESIDUAL, PHASE_SELF_ATTENTION, PHASE_SYNC
from repro.workloads import Workload


class TestPresets:
    def test_paper_setups(self):
        assert len(PAPER_EVALUATION_SETUPS) == 3
        assert [setup.num_devices for setup in PAPER_EVALUATION_SETUPS] == [1, 2, 4]
        assert PRIMARY_SETUP.config.name == "gpt2-1.5b"
        assert SCALABILITY_SETUP.config is GPT2_345M

    def test_setup_label(self):
        assert EvaluationSetup(GPT2_345M, 1).label == "345M, 1 GPU vs 1 FPGA"
        assert "4 GPUs vs 4 FPGAs" in PRIMARY_SETUP.label


class TestMotivationDrivers:
    def test_figure3_marginal_costs(self):
        result = experiments.run_figure3()
        assert len(result.workloads) == 7
        # Paper: ~75 ms per extra output token, ~0.02 ms per extra input token.
        assert result.marginal_output_token_ms > 100 * result.marginal_input_token_ms

    def test_figure4_breakdowns(self):
        result = experiments.run_figure4()
        assert set(result.latency_fractions) == {
            PHASE_LAYERNORM, PHASE_SELF_ATTENTION, PHASE_RESIDUAL, PHASE_FFN,
        }
        assert result.operation_fractions[PHASE_FFN] > result.operation_fractions[PHASE_LAYERNORM]
        assert sum(result.latency_fractions.values()) == pytest.approx(1.0)


class TestDesignSpaceAndResources:
    def test_figure8_selects_64_16(self):
        result = experiments.run_figure8()
        assert (64, 16) in result.best_performing_points()
        assert result.cheapest_best_point() == (64, 16)

    def test_figure13_report(self):
        report = experiments.run_figure13()
        report.check_fits()
        assert report.utilization()["total"]["dsp"] < 0.5


class TestEvaluationDrivers:
    def test_figure14_reduced_grid(self):
        setups = (EvaluationSetup(GPT2_345M, 1),)
        workloads = (Workload(32, 1), Workload(32, 16))
        result = experiments.run_figure14(setups=setups, workloads=workloads)
        assert len(result.columns) == 1
        column = result.columns[0]
        assert len(column.rows) == 2
        assert column.average_speedup > 1.0
        assert "gpt2-345m" in result.speedups()

    def test_figure15_breakdown_phases(self):
        report = experiments.run_figure15(workload=Workload(32, 8))
        assert set(report.fractions) == {
            PHASE_SELF_ATTENTION, PHASE_FFN, PHASE_SYNC, PHASE_LAYERNORM, PHASE_RESIDUAL,
        }
        assert sum(report.fractions.values()) == pytest.approx(1.0)

    def test_figure16_gains(self):
        result = experiments.run_figure16(workloads=(Workload(32, 16), Workload(64, 16)))
        assert result.throughput_gain > 1.0
        assert result.energy_efficiency_gain > 1.0

    def test_figure17_platform_contrast(self):
        result = experiments.run_figure17(workload=Workload(32, 16))
        # GPU/TPU collapse in the generation stage; DFX does not.
        assert result.gpu.summarization_gflops > 5 * result.gpu.generation_gflops
        assert result.tpu.summarization_gflops > 5 * result.tpu.generation_gflops
        assert result.dfx.generation_gflops == pytest.approx(
            result.dfx.summarization_gflops, rel=0.2
        )
        assert result.dfx.generation_gflops > result.gpu.generation_gflops

    def test_figure18_scaling(self):
        result = experiments.run_figure18(workload=Workload(32, 16), device_counts=(1, 2))
        assert result.tokens_per_second[1] > result.tokens_per_second[0]
        factors = result.scaling_factors()
        assert len(factors) == 1
        assert 1.0 < factors[0] < 2.0


class TestBatchingComparison:
    """The paper's Sec. III-A tradeoff must play out on the tiny config."""

    @pytest.fixture(scope="class")
    def result(self):
        return experiments.run_batching_comparison(
            GPT2_TEST_TINY,
            num_devices=1,
            duration_s=60.0,
            low_rate_per_s=0.5,
            burst_rate_per_s=20.0,
            idle_rate_per_s=0.5,
            mean_burst_s=6.0,
            mean_idle_s=6.0,
            batch_timeout_s=1.0,
        )

    def test_configurations_and_policies(self, result):
        labels = {"dfx-unbatched", "gpu-unbatched", "gpu-dynamic", "gpu-continuous"}
        assert set(result.low_load) == labels
        assert set(result.high_load) == labels
        assert result.low_load["dfx-unbatched"].batch_policy == "none"
        assert result.high_load["gpu-dynamic"].batch_policy == "dynamic"
        assert result.high_load["gpu-continuous"].batch_policy == "continuous"

    def test_dfx_wins_unbatched_tail_latency_at_low_load(self, result):
        tails = result.low_load_tail_latency_s()
        assert result.dfx_wins_low_load_latency
        assert tails["dfx-unbatched"] < tails["gpu-unbatched"]
        assert tails["dfx-unbatched"] < tails["gpu-dynamic"]

    def test_dynamic_batching_raises_gpu_throughput_under_bursty_load(self, result):
        rates = result.high_load_tokens_per_second()
        assert result.gpu_batching_throughput_gain > 1.2
        assert rates["gpu-dynamic"] > rates["gpu-unbatched"]
        # Batches actually formed on the bursty trace...
        assert result.high_load["gpu-dynamic"].mean_batch_size > 1.5
        # ...and the latency price was paid in gather delay.
        assert (
            result.high_load["gpu-dynamic"].mean_batch_gather_delay_s
            > result.low_load["dfx-unbatched"].mean_batch_gather_delay_s
        )

    def test_every_report_conserves_requests(self, result):
        for reports in (result.low_load, result.high_load):
            offered = {report.num_offered for report in reports.values()}
            assert len(offered) == 1  # same trace across configurations


class TestBatchCapacitySweep:
    """Batch-aware capacity planning sweeps max_batch_size against a tail SLO."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return experiments.run_batch_capacity_sweep(
            "gpu",
            config=GPT2_TEST_TINY,
            num_devices=1,
            batch_sizes=(1, 4),
            slo_s=2.0,
            batch_timeout_s=0.25,
            trace_duration_s=40.0,
            rate_bounds=(0.1, 16.0),
        )

    def test_one_plan_per_batch_size(self, sweep):
        assert set(sweep.plans) == {1, 4}
        assert sweep.backend == "gpu"
        assert sweep.plans[1].max_rate_per_s > 0
        assert set(sweep.capacities_per_hour()) == {1, 4}

    def test_batching_extends_slo_capacity(self, sweep):
        # The GPU's fixed kernel overhead dominates the tiny config, so
        # batch-4 dynamic batching must sustain a higher SLO-compliant
        # offered rate than unbatched serving.
        assert sweep.plans[4].max_rate_per_s > sweep.plans[1].max_rate_per_s
        assert sweep.batching_capacity_gain > 1.0
        assert sweep.best_batch_size() == 4

    def test_plans_record_the_batched_configuration(self, sweep):
        report = sweep.plans[4].report_at_capacity
        assert report is not None
        assert report.batch_policy == "dynamic"
        assert report.mean_batch_size > 1.0
        unbatched = sweep.plans[1].report_at_capacity
        assert unbatched.batch_policy == "none"

    def test_validation(self):
        with pytest.raises(Exception):
            experiments.run_batch_capacity_sweep(batch_sizes=())
        with pytest.raises(Exception):
            experiments.run_batch_capacity_sweep(batch_sizes=(0, 2))

    def test_accepts_backend_names_for_drivers(self):
        # run_scheduler_comparison resolves registry names too.
        result = experiments.run_scheduler_comparison(
            "tpu",
            policies=("fifo",),
            arrival_rate_per_s=0.5,
            duration_s=20.0,
            num_clusters=1,
        )
        assert set(result.reports) == {"fifo"}
        assert result.reports["fifo"].platform == "tpu"


class TestTablesAndAccuracy:
    def test_table1_rows(self):
        rows = experiments.run_table1()
        assert len(rows) == 3
        assert rows[2]["layers"] == 48
        assert all(row["head_dimension"] == 64 for row in rows)

    def test_table2_cost_effectiveness(self):
        comparison = experiments.run_table2(workload=Workload(32, 16))
        assert comparison.cost_effectiveness_gain > 1.0
        assert comparison.upfront_saving_usd == pytest.approx(14_652, rel=0.001)

    def test_accuracy_comparison_on_tiny_model(self):
        comparisons = experiments.run_accuracy_comparison(config=GPT2_TEST_TINY)
        assert len(comparisons) == 3
        for comparison in comparisons:
            assert comparison.agreement > 0.9
            assert abs(comparison.accuracy_delta) < 0.05
