"""Unit tests for the Key/Value cache."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.model.config import GPT2_TEST_TINY
from repro.model.kv_cache import KVCache, LayerKVCache


class TestLayerCache:
    def _empty(self, n_head=4, head_dim=16):
        return LayerKVCache(
            keys=np.zeros((n_head, 0, head_dim), dtype=np.float32),
            values=np.zeros((n_head, 0, head_dim), dtype=np.float32),
        )

    def test_append_grows_sequence(self):
        cache = self._empty()
        cache.append(np.ones((4, 3, 16)), np.ones((4, 3, 16)))
        assert cache.seq_len == 3
        cache.append(np.ones((4, 1, 16)), np.ones((4, 1, 16)))
        assert cache.seq_len == 4

    def test_append_shape_mismatch_rejected(self):
        cache = self._empty()
        with pytest.raises(ExecutionError):
            cache.append(np.ones((4, 1, 16)), np.ones((4, 2, 16)))
        with pytest.raises(ExecutionError):
            cache.append(np.ones((2, 1, 16)), np.ones((2, 1, 16)))

    def test_appended_values_preserved(self):
        cache = self._empty(n_head=1, head_dim=2)
        first = np.array([[[1.0, 2.0]]], dtype=np.float32)
        second = np.array([[[3.0, 4.0]]], dtype=np.float32)
        cache.append(first, first)
        cache.append(second, second)
        np.testing.assert_array_equal(cache.keys[0, 0], [1.0, 2.0])
        np.testing.assert_array_equal(cache.keys[0, 1], [3.0, 4.0])


class TestModelCache:
    def test_empty_cache_structure(self):
        cache = KVCache.empty(GPT2_TEST_TINY)
        assert len(cache.layers) == GPT2_TEST_TINY.n_layer
        assert cache.seq_len == 0

    def test_layer_index_bounds(self):
        cache = KVCache.empty(GPT2_TEST_TINY)
        with pytest.raises(ExecutionError):
            cache.layer(GPT2_TEST_TINY.n_layer)

    def test_memory_bytes_grows_with_context(self):
        config = GPT2_TEST_TINY
        cache = KVCache.empty(config, dtype=np.float16)
        assert cache.memory_bytes() == 0
        for layer in cache.layers:
            layer.append(
                np.zeros((config.n_head, 10, config.head_dim), dtype=np.float16),
                np.zeros((config.n_head, 10, config.head_dim), dtype=np.float16),
            )
        expected = config.n_layer * 2 * config.n_head * 10 * config.head_dim * 2
        assert cache.memory_bytes() == expected

    def test_per_token_kv_footprint_1_5b(self):
        # One token adds a 1536-wide FP16 row to K and to V in each of the 48
        # layers: ~0.3 MB per token, the quantity Sec. V-B's transpose scheme
        # is designed around (the paper quotes ~0.31 MB for the Value side of
        # its 1.5B configuration).
        from repro.model.config import GPT2_1_5B

        per_token_bytes = 2 * GPT2_1_5B.n_layer * GPT2_1_5B.n_embd * 2
        assert per_token_bytes == 294_912
        assert 0.25e6 < per_token_bytes < 0.35e6
