"""Unit tests for the Key/Value cache."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.model.config import GPT2_TEST_TINY
from repro.model.kv_cache import KVCache, LayerKVCache


class TestLayerCache:
    def _empty(self, n_head=4, head_dim=16):
        return LayerKVCache(
            keys=np.zeros((n_head, 0, head_dim), dtype=np.float32),
            values=np.zeros((n_head, 0, head_dim), dtype=np.float32),
        )

    def test_append_grows_sequence(self):
        cache = self._empty()
        cache.append(np.ones((4, 3, 16)), np.ones((4, 3, 16)))
        assert cache.seq_len == 3
        cache.append(np.ones((4, 1, 16)), np.ones((4, 1, 16)))
        assert cache.seq_len == 4

    def test_append_shape_mismatch_rejected(self):
        cache = self._empty()
        with pytest.raises(ExecutionError):
            cache.append(np.ones((4, 1, 16)), np.ones((4, 2, 16)))
        with pytest.raises(ExecutionError):
            cache.append(np.ones((2, 1, 16)), np.ones((2, 1, 16)))

    def test_appended_values_preserved(self):
        cache = self._empty(n_head=1, head_dim=2)
        first = np.array([[[1.0, 2.0]]], dtype=np.float32)
        second = np.array([[[3.0, 4.0]]], dtype=np.float32)
        cache.append(first, first)
        cache.append(second, second)
        np.testing.assert_array_equal(cache.keys[0, 0], [1.0, 2.0])
        np.testing.assert_array_equal(cache.keys[0, 1], [3.0, 4.0])


class TestGrowthSemantics:
    """Amortized-O(1) growth: capacity doubling behind logical views."""

    def _empty(self, n_head=4, head_dim=16):
        return LayerKVCache(
            keys=np.zeros((n_head, 0, head_dim), dtype=np.float32),
            values=np.zeros((n_head, 0, head_dim), dtype=np.float32),
        )

    def test_capacity_doubles_and_length_tracks_logically(self):
        cache = self._empty()
        capacities = []
        for _ in range(20):
            cache.append(np.ones((4, 1, 16)), np.ones((4, 1, 16)))
            capacities.append(cache.capacity)
        assert cache.seq_len == 20
        assert all(cap >= length + 1 for length, cap in enumerate(capacities))
        # Growth is geometric: few distinct capacities, each at least double
        # its predecessor once past the initial allocation.
        distinct = sorted(set(capacities))
        assert len(distinct) <= 4
        assert all(b >= 2 * a for a, b in zip(distinct, distinct[1:]))

    def test_mixed_multi_row_and_single_row_appends(self):
        cache = self._empty(n_head=2, head_dim=4)
        rng = np.random.default_rng(3)
        chunks = [3, 1, 1, 5, 1, 2]
        all_keys, all_values = [], []
        for rows in chunks:
            keys = rng.normal(size=(2, rows, 4)).astype(np.float32)
            values = rng.normal(size=(2, rows, 4)).astype(np.float32)
            cache.append(keys, values)
            all_keys.append(keys)
            all_values.append(values)
        assert cache.seq_len == sum(chunks)
        np.testing.assert_array_equal(cache.keys, np.concatenate(all_keys, axis=1))
        np.testing.assert_array_equal(cache.values, np.concatenate(all_values, axis=1))

    def test_views_are_stable_values_after_regrowth(self):
        cache = self._empty(n_head=1, head_dim=2)
        first = np.array([[[1.0, 2.0]]], dtype=np.float32)
        cache.append(first, first)
        snapshot = cache.keys.copy()
        for _ in range(50):  # force several regrowths
            cache.append(first * 3, first * 3)
        np.testing.assert_array_equal(cache.keys[:, :1, :], snapshot)

    def test_preallocated_capacity_avoids_regrowth(self):
        cache = LayerKVCache.empty(4, 16, dtype=np.float16, capacity=32)
        assert cache.seq_len == 0
        assert cache.capacity >= 32
        buffer_id = id(cache._keys)
        for _ in range(32):
            cache.append(
                np.ones((4, 1, 16), dtype=np.float16),
                np.ones((4, 1, 16), dtype=np.float16),
            )
        assert id(cache._keys) == buffer_id  # never reallocated
        assert cache.seq_len == 32

    def test_memory_bytes_reports_logical_not_capacity(self):
        config = GPT2_TEST_TINY
        cache = KVCache.empty(config, dtype=np.float16, capacity=64)
        assert cache.memory_bytes() == 0  # capacity alone holds no tokens
        for layer in cache.layers:
            layer.append(
                np.zeros((config.n_head, 3, config.head_dim), dtype=np.float16),
                np.zeros((config.n_head, 3, config.head_dim), dtype=np.float16),
            )
        logical = config.n_layer * 2 * config.n_head * 3 * config.head_dim * 2
        assert cache.memory_bytes() == logical

    def test_shape_mismatch_errors_preserved_after_growth(self):
        cache = self._empty()
        cache.append(np.ones((4, 4, 16)), np.ones((4, 4, 16)))
        with pytest.raises(ExecutionError):
            cache.append(np.ones((4, 1, 16)), np.ones((4, 2, 16)))
        with pytest.raises(ExecutionError):
            cache.append(np.ones((2, 1, 16)), np.ones((2, 1, 16)))
        with pytest.raises(ExecutionError):
            cache.append(np.ones((4, 1, 8)), np.ones((4, 1, 8)))


class TestModelCache:
    def test_empty_cache_structure(self):
        cache = KVCache.empty(GPT2_TEST_TINY)
        assert len(cache.layers) == GPT2_TEST_TINY.n_layer
        assert cache.seq_len == 0

    def test_layer_index_bounds(self):
        cache = KVCache.empty(GPT2_TEST_TINY)
        with pytest.raises(ExecutionError):
            cache.layer(GPT2_TEST_TINY.n_layer)

    def test_memory_bytes_grows_with_context(self):
        config = GPT2_TEST_TINY
        cache = KVCache.empty(config, dtype=np.float16)
        assert cache.memory_bytes() == 0
        for layer in cache.layers:
            layer.append(
                np.zeros((config.n_head, 10, config.head_dim), dtype=np.float16),
                np.zeros((config.n_head, 10, config.head_dim), dtype=np.float16),
            )
        expected = config.n_layer * 2 * config.n_head * 10 * config.head_dim * 2
        assert cache.memory_bytes() == expected

    def test_per_token_kv_footprint_1_5b(self):
        # One token adds a 1536-wide FP16 row to K and to V in each of the 48
        # layers: ~0.3 MB per token, the quantity Sec. V-B's transpose scheme
        # is designed around (the paper quotes ~0.31 MB for the Value side of
        # its 1.5B configuration).
        from repro.model.config import GPT2_1_5B

        per_token_bytes = 2 * GPT2_1_5B.n_layer * GPT2_1_5B.n_embd * 2
        assert per_token_bytes == 294_912
        assert 0.25e6 < per_token_bytes < 0.35e6


class TestBatchedLayerCache:
    def test_empty_and_growth(self):
        from repro.model.kv_cache import BatchedLayerKVCache

        cache = BatchedLayerKVCache(n_head=4, head_dim=16, slots=2, capacity=0)
        assert cache.slots == 2 and cache.capacity == 0
        cache.append([0, 1], np.ones((2, 4, 3, 16)), np.ones((2, 4, 3, 16)))
        assert cache.slot_len(0) == cache.slot_len(1) == 3
        assert cache.capacity >= 3
        keys, values = cache.view([0, 1])
        assert keys.shape == (2, 4, 3, 16)
        np.testing.assert_array_equal(keys, np.ones((2, 4, 3, 16)))

    def test_per_slot_slices_match_sequential_cache(self):
        from repro.model.kv_cache import BatchedLayerKVCache, LayerKVCache

        rng = np.random.default_rng(5)
        batched = BatchedLayerKVCache(n_head=2, head_dim=4, slots=3)
        sequential = [LayerKVCache.empty(2, 4) for _ in range(3)]
        for _ in range(4):
            block_k = rng.normal(size=(3, 2, 1, 4)).astype(np.float32)
            block_v = rng.normal(size=(3, 2, 1, 4)).astype(np.float32)
            batched.append([0, 1, 2], block_k, block_v)
            for slot, cache in enumerate(sequential):
                cache.append(block_k[slot], block_v[slot])
        keys, values = batched.view([0, 1, 2])
        for slot, cache in enumerate(sequential):
            np.testing.assert_array_equal(keys[slot], cache.keys)
            np.testing.assert_array_equal(values[slot], cache.values)

    def test_ragged_cohort_rejected(self):
        from repro.model.kv_cache import BatchedLayerKVCache

        cache = BatchedLayerKVCache(n_head=2, head_dim=4, slots=2)
        cache.append([0], np.ones((1, 2, 2, 4)), np.ones((1, 2, 2, 4)))
        with pytest.raises(ExecutionError):
            cache.view([0, 1])
        with pytest.raises(ExecutionError):
            cache.append([0, 1], np.ones((2, 2, 1, 4)), np.ones((2, 2, 1, 4)))

    def test_reset_recycles_without_reallocating(self):
        from repro.model.kv_cache import BatchedLayerKVCache

        cache = BatchedLayerKVCache(n_head=2, head_dim=4, slots=2, capacity=8)
        cache.append([0, 1], np.ones((2, 2, 5, 4)), np.ones((2, 2, 5, 4)))
        buffer_before = cache._keys
        cache.reset_slots([0, 1])
        assert cache.slot_len(0) == 0
        assert cache.memory_bytes() == 0
        cache.append([0, 1], np.zeros((2, 2, 2, 4)), np.zeros((2, 2, 2, 4)))
        assert cache._keys is buffer_before


class TestBatchedModelCache:
    def test_slot_acquire_release_recycles(self):
        from repro.model.kv_cache import BatchedKVCache

        cache = BatchedKVCache.empty(GPT2_TEST_TINY)
        first = cache.acquire_slot(capacity=8)
        second = cache.acquire_slot(capacity=8)
        assert first != second
        slots_allocated = cache.slots
        cache.release_slot(first)
        assert cache.acquire_slot() == first
        assert cache.slots == slots_allocated
        with pytest.raises(ExecutionError):
            cache.release_slot(first + second + 1000)

    def test_memory_bytes_counts_logical_rows(self):
        from repro.model.kv_cache import BatchedKVCache

        config = GPT2_TEST_TINY
        cache = BatchedKVCache.empty(config, dtype=np.float16, slots=2, capacity=16)
        slot = cache.acquire_slot()
        assert cache.memory_bytes() == 0
        for layer in cache.layers:
            layer.append(
                [slot],
                np.zeros((1, config.n_head, 10, config.head_dim), dtype=np.float16),
                np.zeros((1, config.n_head, 10, config.head_dim), dtype=np.float16),
            )
        expected = config.n_layer * 2 * config.n_head * 10 * config.head_dim * 2
        assert cache.memory_bytes() == expected
