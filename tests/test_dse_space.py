"""Search-space combinatorics: dimensions, candidates, keys, grids."""

from __future__ import annotations

import random

import pytest

from repro.dse import Candidate, Dimension, SearchSpace
from repro.errors import ConfigurationError


def make_space() -> SearchSpace:
    return SearchSpace([
        Dimension("backend", ["dfx", "gpu"]),
        Dimension("batch", [1, 8, 32]),
        Dimension("tile", {"64x16": (64, 16), "128x8": (128, 8)}),
    ])


class TestDimension:
    def test_sequence_choices_labelled_by_str(self):
        dim = Dimension("batch", [1, 8])
        assert dim.labels == ("1", "8")
        assert dim.values == (1, 8)

    def test_mapping_choices_preserve_order_and_values(self):
        dim = Dimension("tile", {"64x16": (64, 16), "128x8": (128, 8)})
        assert dim.labels == ("64x16", "128x8")
        assert dim.values == ((64, 16), (128, 8))

    def test_index_of_unknown_label_raises(self):
        with pytest.raises(ConfigurationError, match="no level"):
            Dimension("backend", ["dfx"]).index_of("tpu")

    def test_empty_choices_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one level"):
            Dimension("backend", [])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            Dimension("batch", [1, 1])

    @pytest.mark.parametrize("bad", ["a|b", "a=b", ""])
    def test_reserved_characters_rejected_in_name(self, bad):
        with pytest.raises(ConfigurationError):
            Dimension(bad, [1])

    def test_reserved_characters_rejected_in_labels(self):
        with pytest.raises(ConfigurationError):
            Dimension("x", {"a=b": 1})


class TestCandidate:
    def test_key_joins_name_label_pairs(self):
        space = make_space()
        candidate = space.candidate((1, 2, 0))
        assert candidate.key == "backend=gpu|batch=32|tile=64x16"

    def test_params_and_label_map(self):
        candidate = make_space().candidate((0, 1, 1))
        assert candidate.params() == {
            "backend": "dfx", "batch": 8, "tile": (128, 8),
        }
        assert candidate.label_map() == {
            "backend": "dfx", "batch": "8", "tile": "128x8",
        }

    def test_getitem_and_get(self):
        candidate = make_space().candidate((0, 0, 0))
        assert candidate["batch"] == 1
        assert candidate.get("missing") is None
        assert candidate.get("missing", 7) == 7
        with pytest.raises(KeyError):
            candidate["missing"]

    def test_mismatched_field_lengths_rejected(self):
        with pytest.raises(ConfigurationError, match="equal length"):
            Candidate(names=("a",), labels=("x", "y"), values=(1,), indices=(0,))


class TestSearchSpace:
    def test_size_is_product_of_dimension_sizes(self):
        assert make_space().size == 2 * 3 * 2

    def test_duplicate_dimension_names_rejected(self):
        with pytest.raises(ConfigurationError, match="unique"):
            SearchSpace([Dimension("a", [1]), Dimension("a", [2])])

    def test_empty_space_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one dimension"):
            SearchSpace([])

    def test_candidate_index_out_of_range(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            make_space().candidate((0, 3, 0))

    def test_candidate_wrong_arity(self):
        with pytest.raises(ConfigurationError, match="expected 3 indices"):
            make_space().candidate((0, 0))

    def test_grid_is_row_major_last_dimension_fastest(self):
        space = SearchSpace([Dimension("a", [0, 1]), Dimension("b", ["x", "y"])])
        keys = [candidate.key for candidate in space.grid()]
        assert keys == ["a=0|b=x", "a=0|b=y", "a=1|b=x", "a=1|b=y"]

    def test_grid_fixed_slices_by_label(self):
        space = make_space()
        sliced = space.grid(fixed={"backend": "dfx"})
        assert len(sliced) == 6
        assert all(candidate["backend"] == "dfx" for candidate in sliced)

    def test_grid_fixed_unknown_dimension_raises(self):
        with pytest.raises(ConfigurationError, match="unknown dimension"):
            make_space().grid(fixed={"nope": "dfx"})

    def test_candidate_from_labels_round_trips(self):
        space = make_space()
        for candidate in space.grid():
            rebuilt = space.candidate_from_labels(candidate.label_map())
            assert rebuilt == candidate

    def test_candidate_from_labels_missing_dimension(self):
        with pytest.raises(ConfigurationError, match="missing"):
            make_space().candidate_from_labels({"backend": "dfx"})

    def test_candidate_from_labels_unknown_dimension(self):
        labels = make_space().candidate((0, 0, 0)).label_map()
        labels["extra"] = "1"
        with pytest.raises(ConfigurationError, match="unknown dimensions"):
            make_space().candidate_from_labels(labels)

    def test_random_indices_deterministic_for_seeded_rng(self):
        space = make_space()
        draws_a = [space.random_indices(random.Random(3)) for _ in range(1)]
        draws_b = [space.random_indices(random.Random(3)) for _ in range(1)]
        assert draws_a == draws_b
        indices = space.random_indices(random.Random(0))
        assert len(indices) == 3
        space.candidate(indices)  # always in range
