"""Tests for the tiling scheme (Fig. 8/9) and calibration constants."""

import pytest

from repro.core.calibration import Calibration, DEFAULT_CALIBRATION, IDEAL_CALIBRATION
from repro.core.tiling import (
    DEFAULT_TILE,
    TILE_DESIGN_POINTS,
    TilingConfig,
    design_space_mha_sweep,
    loading_direction_tradeoffs,
    multi_head_attention_gflops,
)
from repro.errors import CalibrationError, ConfigurationError
from repro.model.config import GPT2_1_5B


class TestTilingConfig:
    def test_default_tile_is_64_by_16(self):
        tiling = TilingConfig()
        assert (tiling.d, tiling.l) == DEFAULT_TILE == (64, 16)
        assert tiling.macs_per_cycle == 1024
        assert tiling.tile_bytes == 2048  # exactly one 32x512-bit HBM beat

    def test_all_design_points_have_1024_macs(self):
        for d, l in TILE_DESIGN_POINTS:
            assert TilingConfig(d, l).macs_per_cycle == 1024

    def test_tiles_for_weight_matrix(self):
        tiling = TilingConfig(64, 16)
        assert tiling.tiles_for(1536, 384) == (1536 // 64) * (384 // 16)
        assert tiling.tiles_for(65, 17) == 2 * 2

    def test_utilization_full_and_partial(self):
        tiling = TilingConfig(64, 16)
        assert tiling.utilization(128, 32) == pytest.approx(1.0)
        assert tiling.utilization(1, 1) == pytest.approx(1.0 / 1024)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            TilingConfig(0, 16)
        with pytest.raises(ConfigurationError):
            TilingConfig(64, 16).tiles_for(0, 4)


class TestFigure8aSweep:
    def test_middle_points_tie_and_extremes_lose(self):
        sweep = design_space_mha_sweep(GPT2_1_5B, kv_length=64)
        best = max(sweep.values())
        # (16,64), (32,32), (64,16) are within a few percent of each other...
        for point in ((16, 64), (32, 32), (64, 16)):
            assert sweep[point] >= 0.95 * best
        # ...while (8,128) and (128,8) clearly underperform (Fig. 8a).
        assert sweep[(8, 128)] < 0.80 * best
        assert sweep[(128, 8)] < 0.80 * best

    def test_large_d_hurts_query_key_product(self):
        # d > head_dim wastes MAC rows on Q x K^T.
        small_d = multi_head_attention_gflops(TilingConfig(64, 16), GPT2_1_5B)
        large_d = multi_head_attention_gflops(TilingConfig(128, 8), GPT2_1_5B)
        assert large_d < small_d

    def test_gflops_scale_with_frequency(self):
        slow = multi_head_attention_gflops(TilingConfig(), GPT2_1_5B,
                                           kernel_frequency_hz=100e6)
        fast = multi_head_attention_gflops(TilingConfig(), GPT2_1_5B,
                                           kernel_frequency_hz=200e6)
        assert fast == pytest.approx(2 * slow)


class TestLoadingDirections:
    def test_three_directions_reported(self):
        directions = {d.name for d in loading_direction_tradeoffs(TilingConfig(), GPT2_1_5B)}
        assert directions == {"horizontal", "vertical", "zigzag"}

    def test_zigzag_balances_buffers_and_reuse(self):
        horizontal, vertical, zigzag = loading_direction_tradeoffs(TilingConfig(), GPT2_1_5B)
        assert horizontal.partial_sum_buffers > zigzag.partial_sum_buffers
        assert vertical.partial_sum_buffers == 1
        assert vertical.input_reuse_factor < zigzag.input_reuse_factor
        assert zigzag.input_reuse_factor < horizontal.input_reuse_factor


class TestCalibration:
    def test_default_values_within_physical_ranges(self):
        cal = DEFAULT_CALIBRATION
        assert 0 < cal.hbm_efficiency <= 1
        assert cal.matrix_issue_cycles >= 0
        assert cal.aurora_hop_latency_s > 0

    def test_ideal_calibration_has_no_overheads(self):
        assert IDEAL_CALIBRATION.hbm_efficiency == 1.0
        assert IDEAL_CALIBRATION.matrix_issue_cycles == 0
        assert IDEAL_CALIBRATION.host_overhead_per_token_s == 0.0

    def test_with_overrides_returns_new_object(self):
        tweaked = DEFAULT_CALIBRATION.with_overrides(hbm_efficiency=0.9)
        assert tweaked.hbm_efficiency == 0.9
        assert DEFAULT_CALIBRATION.hbm_efficiency != 0.9

    def test_invalid_calibration_rejected(self):
        with pytest.raises(CalibrationError):
            Calibration(hbm_efficiency=0.0)
        with pytest.raises(CalibrationError):
            Calibration(matrix_issue_cycles=-1)
        with pytest.raises(CalibrationError):
            Calibration(aurora_hop_latency_s=-1e-6)
