"""Tests for the DFX ISA instruction dataclasses."""

import pytest

from repro.errors import ProgramValidationError
from repro.isa.instructions import (
    DMAInstruction,
    MatrixInstruction,
    RouterInstruction,
    VectorInstruction,
)
from repro.isa.opcodes import (
    DMAOpcode,
    InstructionClass,
    MatrixOpcode,
    MemorySpace,
    RouterOpcode,
    VectorOpcode,
)


class TestMatrixInstruction:
    def _conv1d(self, **kwargs):
        defaults = dict(
            opcode=MatrixOpcode.CONV1D,
            dst="out",
            input_operand="x",
            weight_operand="w",
            bias_operand="b",
            rows=1,
            in_dim=64,
            out_dim=32,
        )
        defaults.update(kwargs)
        return MatrixInstruction(**defaults)

    def test_classification_and_operands(self):
        instr = self._conv1d()
        assert instr.instruction_class is InstructionClass.COMPUTE_MATRIX
        assert set(instr.source_operands()) == {"x", "w", "b"}
        assert instr.destination_operands() == ("out",)

    def test_flops_counts_mac_and_bias(self):
        instr = self._conv1d(rows=2)
        assert instr.flops() == 2 * 2 * 64 * 32 + 2 * 32

    def test_weight_bytes(self):
        assert self._conv1d().weight_bytes() == 64 * 32 * 2

    def test_mask_only_on_masked_mm(self):
        with pytest.raises(ProgramValidationError):
            self._conv1d(apply_mask=True)
        masked = MatrixInstruction(
            opcode=MatrixOpcode.MASKED_MM, dst="s", input_operand="q",
            weight_operand="k", rows=1, in_dim=64, out_dim=10, apply_mask=True,
        )
        assert masked.apply_mask

    def test_redu_max_requires_destination(self):
        with pytest.raises(ProgramValidationError):
            self._conv1d(apply_redu_max=True)

    def test_positive_dims_required(self):
        with pytest.raises(ProgramValidationError):
            self._conv1d(in_dim=0)
        with pytest.raises(ProgramValidationError):
            self._conv1d(rows=0)

    def test_redu_max_adds_destination(self):
        instr = self._conv1d(apply_redu_max=True, redu_max_dst="max")
        assert "max" in instr.destination_operands()


class TestVectorInstruction:
    def test_binary_op_needs_operand_or_immediate(self):
        with pytest.raises(ProgramValidationError):
            VectorInstruction(VectorOpcode.ADD, dst="y", src1="a", length=8)
        ok = VectorInstruction(VectorOpcode.ADD, dst="y", src1="a", immediate=1.0, length=8)
        assert ok.flops() == 8

    def test_unary_ops_do_not_need_second_operand(self):
        instr = VectorInstruction(VectorOpcode.EXP, dst="y", src1="a", length=16, rows=2)
        assert instr.flops() == 32
        assert instr.instruction_class is InstructionClass.COMPUTE_VECTOR

    def test_load_store_have_zero_flops(self):
        load = VectorInstruction(VectorOpcode.LOAD, dst="y", src1="gamma", length=8)
        assert load.flops() == 0.0

    def test_invalid_length(self):
        with pytest.raises(ProgramValidationError):
            VectorInstruction(VectorOpcode.EXP, dst="y", src1="a", length=0)


class TestDMAInstruction:
    def test_operands(self):
        instr = DMAInstruction(DMAOpcode.LOAD_WEIGHT, dst="buf", src="w_ffn1",
                               size_bytes=1024, memory=MemorySpace.HBM)
        assert instr.instruction_class is InstructionClass.DMA
        assert instr.source_operands() == ("w_ffn1",)
        assert instr.destination_operands() == ("buf",)

    def test_register_space_rejected(self):
        with pytest.raises(ProgramValidationError):
            DMAInstruction(DMAOpcode.LOAD_BIAS, dst="b", src="bias",
                           memory=MemorySpace.REGISTER)

    def test_negative_size_rejected(self):
        with pytest.raises(ProgramValidationError):
            DMAInstruction(DMAOpcode.LOAD_BIAS, dst="b", src="bias", size_bytes=-1)


class TestRouterInstruction:
    def test_payload_bytes(self):
        sync = RouterInstruction(RouterOpcode.SYNC, dst="full", src="part",
                                 payload_elements=1536, rows=2)
        assert sync.payload_bytes() == 1536 * 2 * 2
        assert sync.instruction_class is InstructionClass.ROUTER

    def test_positive_payload_required(self):
        with pytest.raises(ProgramValidationError):
            RouterInstruction(RouterOpcode.SYNC, dst="d", src="s", payload_elements=0)

    def test_instructions_carry_phase_tags(self):
        sync = RouterInstruction(RouterOpcode.SYNC, dst="d", src="s",
                                 payload_elements=4, tag="synchronization")
        assert sync.tag == "synchronization"


class TestWeightReuseRows:
    def _mm(self, rows, reuse):
        return MatrixInstruction(
            opcode=MatrixOpcode.MM, dst="out", input_operand="x",
            weight_operand="w", rows=rows, in_dim=4, out_dim=4,
            weight_reuse_rows=reuse,
        )

    def test_defaults_to_no_reuse(self):
        assert self._mm(rows=3, reuse=1).weight_reuse_rows == 1

    def test_reuse_must_divide_rows(self):
        self._mm(rows=8, reuse=4)
        with pytest.raises(ProgramValidationError):
            self._mm(rows=8, reuse=3)

    def test_reuse_must_be_positive(self):
        with pytest.raises(ProgramValidationError):
            self._mm(rows=4, reuse=0)
