"""Objective vectors, dominance, non-dominated sorting, crowding, fronts."""

from __future__ import annotations

import math

import pytest

from repro.dse import (
    Dimension,
    EvaluatedCandidate,
    Objective,
    ObjectiveVector,
    ParetoFront,
    SearchSpace,
    crowding_distances,
    non_dominated_sort,
    pareto_front,
)
from repro.errors import ConfigurationError

MIN_MAX = (Objective("latency", "min"), Objective("throughput", "max"))


def vector(latency: float, throughput: float) -> ObjectiveVector:
    return ObjectiveVector(objectives=MIN_MAX, values=(latency, throughput))


def evaluated(index: int, latency: float, throughput: float) -> EvaluatedCandidate:
    space = SearchSpace([Dimension("i", list(range(16)))])
    return EvaluatedCandidate(
        candidate=space.candidate((index,)), vector=vector(latency, throughput)
    )


class TestObjective:
    def test_minimized_negates_max_objectives(self):
        assert Objective("t", "max").minimized(5.0) == -5.0
        assert Objective("t", "min").minimized(5.0) == 5.0

    def test_invalid_sense_rejected(self):
        with pytest.raises(ConfigurationError, match="sense"):
            Objective("t", "maximize")


class TestObjectiveVector:
    def test_dominates_accounts_for_sense(self):
        # Lower latency AND higher throughput -> dominates.
        assert vector(1.0, 10.0).dominates(vector(2.0, 5.0))
        # Trade-off -> no dominance either way.
        assert not vector(1.0, 5.0).dominates(vector(2.0, 10.0))
        assert not vector(2.0, 10.0).dominates(vector(1.0, 5.0))
        # Equal vectors do not dominate each other.
        assert not vector(1.0, 5.0).dominates(vector(1.0, 5.0))

    def test_value_lookup(self):
        v = vector(1.5, 30.0)
        assert v.value("latency") == 1.5
        assert v.value("throughput") == 30.0
        with pytest.raises(ConfigurationError, match="no objective"):
            v.value("energy")

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError, match="NaN"):
            vector(float("nan"), 1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ObjectiveVector(objectives=MIN_MAX, values=(1.0,))

    def test_cross_objective_comparison_rejected(self):
        other = ObjectiveVector(
            objectives=(Objective("cost", "min"), Objective("perf", "max")),
            values=(1.0, 2.0),
        )
        with pytest.raises(ConfigurationError, match="different objectives"):
            vector(1.0, 2.0).dominates(other)


class TestNonDominatedSort:
    def test_layers_peel_off_in_order(self):
        vectors = [
            vector(1.0, 10.0),  # front 0
            vector(2.0, 20.0),  # front 0 (trade-off with the first)
            vector(2.0, 10.0),  # front 1 (dominated by both)
            vector(3.0, 5.0),   # front 2 (dominated by index 2)
        ]
        assert non_dominated_sort(vectors) == [[0, 1], [2], [3]]

    def test_all_mutually_non_dominated(self):
        vectors = [vector(1.0, 1.0), vector(2.0, 2.0), vector(3.0, 3.0)]
        assert non_dominated_sort(vectors) == [[0, 1, 2]]

    def test_empty_input(self):
        assert non_dominated_sort([]) == []

    def test_mixed_objectives_rejected(self):
        other = ObjectiveVector(
            objectives=(Objective("cost", "min"), Objective("perf", "max")),
            values=(1.0, 2.0),
        )
        with pytest.raises(ConfigurationError, match="share one objective"):
            non_dominated_sort([vector(1.0, 1.0), other])


class TestCrowdingDistances:
    def test_small_fronts_are_all_infinite(self):
        vectors = [vector(1.0, 10.0), vector(2.0, 20.0)]
        distances = crowding_distances(vectors, [0, 1])
        assert distances == {0: math.inf, 1: math.inf}

    def test_boundaries_infinite_interior_finite(self):
        vectors = [vector(1.0, 10.0), vector(2.0, 20.0), vector(3.0, 30.0)]
        distances = crowding_distances(vectors, [0, 1, 2])
        assert distances[0] == math.inf
        assert distances[2] == math.inf
        # Interior member: normalized gap of 1.0 on each of two axes.
        assert distances[1] == pytest.approx(2.0)

    def test_degenerate_axis_contributes_nothing(self):
        vectors = [vector(1.0, 5.0), vector(2.0, 5.0), vector(3.0, 5.0)]
        distances = crowding_distances(vectors, [0, 1, 2])
        assert distances[1] == pytest.approx(1.0)  # only the latency axis


class TestParetoFront:
    def test_front_keeps_only_non_dominated(self):
        entries = [
            evaluated(0, 1.0, 10.0),
            evaluated(1, 2.0, 20.0),
            evaluated(2, 3.0, 15.0),  # dominated by index 1
        ]
        front = pareto_front(entries)
        assert sorted(front.keys()) == ["i=0", "i=1"]

    def test_every_front_member_is_non_dominated_oracle(self):
        entries = [
            evaluated(i, float(i % 5 + 1), float((i * 7) % 11))
            for i in range(12)
        ]
        front = pareto_front(entries)
        front_keys = set(front.keys())
        for entry in entries:
            dominated = any(
                other.vector.dominates(entry.vector)
                for other in entries
                if other.key != entry.key
            )
            assert (entry.key in front_keys) == (not dominated)

    def test_duplicate_keys_collapse_to_first(self):
        entries = [evaluated(3, 1.0, 10.0), evaluated(3, 9.0, 1.0)]
        front = pareto_front(entries)
        assert len(front) == 1
        assert front.members[0].vector.value("latency") == 1.0

    def test_infeasible_entries_excluded(self):
        space = SearchSpace([Dimension("i", [0, 1])])
        infeasible = EvaluatedCandidate(
            candidate=space.candidate((1,)),
            vector=None,
            infeasible_reason="backend cannot batch",
        )
        front = pareto_front([evaluated(0, 1.0, 1.0), infeasible])
        assert front.keys() == ["i=0"]

    def test_all_infeasible_yields_empty_front(self):
        space = SearchSpace([Dimension("i", [0])])
        entry = EvaluatedCandidate(
            candidate=space.candidate((0,)), vector=None, infeasible_reason="no"
        )
        front = pareto_front([entry])
        assert len(front) == 0
        assert isinstance(front, ParetoFront)

    def test_members_ordered_by_crowding_then_key(self):
        entries = [
            evaluated(0, 1.0, 10.0),
            evaluated(1, 2.0, 20.0),
            evaluated(2, 3.0, 30.0),
            evaluated(3, 4.0, 40.0),
        ]
        front = pareto_front(entries)
        distances = [member.crowding_distance for member in front]
        assert distances == sorted(distances, reverse=True)
        # Boundary (infinite) members tie-break on candidate key.
        infinite = [m.candidate.key for m in front if m.crowding_distance == math.inf]
        assert infinite == sorted(infinite)

    def test_best_per_objective(self):
        entries = [evaluated(0, 1.0, 10.0), evaluated(1, 2.0, 20.0)]
        front = pareto_front(entries)
        assert front.best("latency").candidate.key == "i=0"
        assert front.best("throughput").candidate.key == "i=1"
        with pytest.raises(ConfigurationError, match="no objective"):
            front.best("energy")

    def test_member_lookup(self):
        front = pareto_front([evaluated(0, 1.0, 10.0)])
        assert front.member("i=0").candidate.key == "i=0"
        with pytest.raises(ConfigurationError, match="no front member"):
            front.member("i=9")

    def test_evaluated_candidate_requires_exactly_one_of_vector_or_reason(self):
        space = SearchSpace([Dimension("i", [0])])
        candidate = space.candidate((0,))
        with pytest.raises(ConfigurationError, match="exactly one"):
            EvaluatedCandidate(candidate=candidate, vector=None)
        with pytest.raises(ConfigurationError, match="exactly one"):
            EvaluatedCandidate(
                candidate=candidate,
                vector=vector(1.0, 1.0),
                infeasible_reason="both",
            )
