"""Tests for the Aurora ring-link model and the FPGA power model."""

import pytest

from repro.errors import ConfigurationError
from repro.fpga.aurora import AURORA_ENCODING_EFFICIENCY, AuroraLinkModel
from repro.fpga.power import FPGAPowerModel


class TestAuroraLink:
    def test_encoding_overhead_is_about_3_percent(self):
        assert 1.0 - AURORA_ENCODING_EFFICIENCY == pytest.approx(0.0303, abs=0.001)

    def test_effective_bandwidth_below_line_rate(self):
        link = AuroraLinkModel()
        assert link.effective_bandwidth_bytes < 100e9 / 8
        assert link.effective_bandwidth_bytes == pytest.approx(100e9 / 8 * 64 / 66)

    def test_hop_time_has_latency_floor(self):
        link = AuroraLinkModel(per_hop_latency_s=2e-6)
        assert link.hop_seconds(0) == pytest.approx(2e-6)
        assert link.hop_seconds(12_000) > link.hop_seconds(0)

    def test_single_device_all_gather_is_free(self):
        link = AuroraLinkModel()
        assert link.ring_all_gather_seconds(10_000, 1) == 0.0

    def test_all_gather_scales_with_hops(self):
        link = AuroraLinkModel()
        two = link.ring_all_gather_seconds(4096, 2)
        four = link.ring_all_gather_seconds(4096, 4)
        assert four > two

    def test_all_gather_cycles_conversion(self):
        link = AuroraLinkModel()
        seconds = link.ring_all_gather_seconds(3072, 4)
        cycles = link.ring_all_gather_cycles(3072, 4)
        assert cycles == pytest.approx(seconds * 200e6)

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            AuroraLinkModel().hop_seconds(-1)

    def test_invalid_device_count_rejected(self):
        with pytest.raises(ConfigurationError):
            AuroraLinkModel().ring_all_gather_seconds(1024, 0)


class TestFPGAPower:
    def test_full_load_matches_paper_measurement(self):
        model = FPGAPowerModel()
        assert model.board_power_watts(1.0) == pytest.approx(45.0)

    def test_idle_power_is_static_only(self):
        model = FPGAPowerModel()
        assert model.board_power_watts(0.0) == pytest.approx(model.static_watts)

    def test_appliance_power_scales_with_devices(self):
        model = FPGAPowerModel()
        assert model.appliance_power_watts(4) == pytest.approx(180.0)

    def test_energy(self):
        model = FPGAPowerModel()
        assert model.energy_joules(2.0, 4) == pytest.approx(360.0)

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            FPGAPowerModel().board_power_watts(1.5)

    def test_invalid_device_count_rejected(self):
        with pytest.raises(ConfigurationError):
            FPGAPowerModel().appliance_power_watts(0)
