"""Tests for the GPT-3-family projection study."""

import pytest

from repro.analysis.projections import (
    GPT3_13B,
    GPT3_6_7B,
    GPT3_FAMILY,
    minimum_cluster_size,
    project_family,
    project_model,
)
from repro.errors import PartitioningError
from repro.model.config import GPT2_1_5B, GPT2_345M, GPT2Config
from repro.workloads import Workload


class TestClusterSizing:
    def test_paper_models_fit_small_clusters(self):
        assert minimum_cluster_size(GPT2_345M, max_context_tokens=1024).num_devices == 1
        sizing_1_5b = minimum_cluster_size(GPT2_1_5B, max_context_tokens=1024)
        assert sizing_1_5b.num_devices <= 2

    def test_larger_models_need_more_devices(self):
        small = minimum_cluster_size(GPT2_1_5B, max_context_tokens=1024)
        large = minimum_cluster_size(GPT3_6_7B, max_context_tokens=1024)
        larger = minimum_cluster_size(GPT3_13B, max_context_tokens=1024)
        assert small.num_devices <= large.num_devices <= larger.num_devices
        assert large.num_devices >= 2

    def test_hbm_utilization_within_headroom(self):
        for config in GPT3_FAMILY:
            sizing = minimum_cluster_size(config, max_context_tokens=1024)
            assert sizing.hbm_utilization <= 0.9

    def test_unfittable_model_rejected(self):
        absurd = GPT2Config(name="gpt-absurd", n_layer=96, n_embd=12288, n_head=96,
                            n_positions=2048)
        with pytest.raises(PartitioningError):
            minimum_cluster_size(absurd, candidate_sizes=(1, 2), max_context_tokens=2048)


class TestProjections:
    def test_project_model_structure(self):
        projection = project_model(GPT3_6_7B, workload=Workload(32, 16),
                                   max_context_tokens=1024)
        assert projection.config is GPT3_6_7B
        assert projection.latency_ms > 0
        assert projection.tokens_per_second > 0
        assert projection.per_token_generation_ms > 0

    def test_bigger_models_are_slower_per_token(self):
        small = project_model(GPT2_1_5B, workload=Workload(32, 16), max_context_tokens=1024)
        large = project_model(GPT3_6_7B, workload=Workload(32, 16), max_context_tokens=1024)
        assert large.per_token_generation_ms > small.per_token_generation_ms

    def test_project_family_returns_all_fitting_models(self):
        projections = project_family(workload=Workload(32, 8), max_context_tokens=1024)
        names = [projection.config.name for projection in projections]
        assert "gpt3-6.7b" in names
        assert "gpt3-13b" in names
        assert len(projections) == len(GPT3_FAMILY)
