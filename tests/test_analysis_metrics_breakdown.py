"""Tests for the analysis layer: metrics, breakdowns, energy, cost, reports."""

import pytest

from repro.analysis.breakdown import aggregate_breakdown, dfx_breakdown, gpu_breakdown
from repro.analysis.cost import cost_comparison
from repro.analysis.energy import average_energy_efficiency_gain, energy_efficiency_rows
from repro.analysis.metrics import (
    ComparisonRow,
    average_latency_ms,
    average_speedup,
    average_throughput_ratio,
    geometric_mean_speedup,
    pair_results,
    stage_gflops,
)
from repro.analysis.reports import format_fractions, format_speedup_series, format_table
from repro.errors import ConfigurationError
from repro.results import InferenceResult, PHASE_FFN, PHASE_SELF_ATTENTION, PHASE_SYNC, StageLatency
from repro.workloads import Workload


def _result(platform, latency_ms, workload=Workload(64, 64), power=180.0):
    return InferenceResult(
        platform=platform,
        model_name="gpt2-1.5b",
        workload=workload,
        num_devices=4,
        summarization=StageLatency(latency_ms * 0.2, {PHASE_SELF_ATTENTION: latency_ms * 0.1,
                                                      PHASE_FFN: latency_ms * 0.1}),
        generation=StageLatency(latency_ms * 0.8, {PHASE_SELF_ATTENTION: latency_ms * 0.4,
                                                   PHASE_FFN: latency_ms * 0.3,
                                                   PHASE_SYNC: latency_ms * 0.1}),
        total_power_watts=power,
        flops=1e12,
    )


class TestComparisonRows:
    def test_speedup_and_ratios(self):
        row = ComparisonRow(Workload(64, 64), _result("gpu", 1000.0, power=190.0),
                            _result("dfx", 250.0, power=180.0))
        assert row.speedup == pytest.approx(4.0)
        assert row.throughput_ratio == pytest.approx(4.0)
        assert row.energy_efficiency_ratio == pytest.approx(4.0 * 190 / 180)

    def test_pair_results_validates_alignment(self):
        gpu = [_result("gpu", 100.0, Workload(32, 1))]
        dfx = [_result("dfx", 50.0, Workload(32, 4))]
        with pytest.raises(ConfigurationError):
            pair_results(gpu, dfx)
        with pytest.raises(ConfigurationError):
            pair_results(gpu, [])

    def test_average_speedup_is_ratio_of_average_latencies(self):
        workloads = [Workload(32, 1), Workload(32, 256)]
        gpu = [_result("gpu", 100.0, workloads[0]), _result("gpu", 10_000.0, workloads[1])]
        dfx = [_result("dfx", 200.0, workloads[0]), _result("dfx", 2_000.0, workloads[1])]
        rows = pair_results(gpu, dfx)
        expected = (100.0 + 10_000.0) / (200.0 + 2_000.0)
        assert average_speedup(rows) == pytest.approx(expected)
        # The geometric mean of per-workload ratios is different.
        assert geometric_mean_speedup(rows) != pytest.approx(expected)

    def test_average_latency_and_throughput(self):
        results = [_result("dfx", 100.0), _result("dfx", 300.0)]
        assert average_latency_ms(results) == pytest.approx(200.0)
        rows = pair_results([_result("gpu", 400.0), _result("gpu", 400.0)], results)
        assert average_throughput_ratio(rows) > 1.0

    def test_empty_inputs(self):
        assert average_speedup([]) == 0.0
        assert average_latency_ms([]) == 0.0

    def test_stage_gflops(self):
        gflops = stage_gflops(_result("dfx", 400.0))
        assert gflops.platform == "dfx"
        assert gflops.total_gflops > 0


class TestBreakdownAggregation:
    def test_fractions_normalized_over_selected_phases(self):
        report = dfx_breakdown([_result("dfx", 100.0)])
        assert sum(report.fractions.values()) == pytest.approx(1.0)
        assert report.dominant_phase() == PHASE_SELF_ATTENTION

    def test_gpu_breakdown_excludes_sync(self):
        report = gpu_breakdown([_result("gpu", 100.0)])
        assert PHASE_SYNC not in report.fractions

    def test_aggregate_over_multiple_results(self):
        report = aggregate_breakdown([_result("dfx", 100.0), _result("dfx", 300.0)])
        assert sum(report.fractions.values()) == pytest.approx(1.0)

    def test_empty_results(self):
        assert aggregate_breakdown([]).fractions == {}


class TestEnergyAndCost:
    def test_normalized_energy_efficiency(self):
        rows = pair_results([_result("gpu", 1000.0, power=190.0)],
                            [_result("dfx", 250.0, power=180.0)])
        energy_rows = energy_efficiency_rows(rows)
        assert energy_rows[0].normalized_gpu == 1.0
        assert energy_rows[0].normalized_dfx > 1.0
        assert average_energy_efficiency_gain(rows) == pytest.approx(
            energy_rows[0].normalized_dfx
        )

    def test_cost_comparison_table2_structure(self):
        comparison = cost_comparison(_result("gpu", 4921.0), _result("dfx", 880.0))
        assert comparison.upfront_saving_usd == pytest.approx(14_652, rel=0.001)
        assert comparison.cost_effectiveness_gain > 1.0
        assert comparison.dfx.tokens_per_second_per_million_usd > (
            comparison.gpu.tokens_per_second_per_million_usd
        )


class TestReports:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.0], ["long-name", 12.345]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "long-name" in lines[3]
        assert "12.35" in lines[3]

    def test_format_fractions_sorted_descending(self):
        text = format_fractions({"a": 0.1, "b": 0.9})
        assert text.index("b") < text.index("a")
        assert "90.0%" in text

    def test_format_speedup_series(self):
        text = format_speedup_series(["[32:1]", "[32:4]"], [1.5, 2.0])
        assert "[32:1]=1.50x" in text
