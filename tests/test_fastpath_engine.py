"""Tests for the fast-path execution engine.

Covers the compiled-program cache (each distinct shape compiles at most once
per ``generate()``), immutability of cached programs under execution, the
bit-exactness contract between the linked fast path and the per-instruction
slow path, KV growth inside the functional cores, and warm-cache reuse via
``reset_cache``.
"""

import numpy as np
import pytest

from repro.core.functional import (
    DFXFunctionalSimulator,
    FunctionalCore,
    GrowableKV,
    link_program,
)
from repro.isa.compiler import DFXCompiler
from repro.isa.instructions import MatrixInstruction
from repro.isa.opcodes import MatrixOpcode
from repro.model.config import GPT2_TEST_TINY
from repro.model.numerics import FP16_DFX
from repro.parallel.partitioner import build_partition_plan


@pytest.fixture()
def simulator(tiny_weights):
    return DFXFunctionalSimulator(tiny_weights, num_devices=2, numerics=FP16_DFX)


class TestProgramCache:
    def test_compile_at_most_once_per_shape_during_generate(self, simulator):
        simulator.generate([5, 111, 42], max_new_tokens=16)
        counts = simulator.compiler.compile_counts
        assert counts, "expected the compiler to record compilations"
        over_compiled = {name: n for name, n in counts.items() if n > 1}
        assert not over_compiled, f"recompiled program shapes: {over_compiled}"
        # The whole generation stage rides on one decode-step program.
        assert counts["decoder-step[device=0]"] == 1

    def test_cache_returns_identical_objects(self, simulator):
        compiler = simulator.compiler
        assert compiler.compile_decoder_layer(3, 5) is compiler.compile_decoder_layer(3, 5)
        assert compiler.compile_embedding(2) is compiler.compile_embedding(2)
        assert compiler.compile_lm_head() is compiler.compile_lm_head()
        assert compiler.compile_decoder_step() is compiler.compile_decoder_step()

    def test_distinct_shapes_get_distinct_programs(self, simulator):
        compiler = simulator.compiler
        assert compiler.compile_decoder_layer(1, 0) is not compiler.compile_decoder_layer(1, 1)
        assert compiler.compile_decoder_layer(2, 0) is not compiler.compile_decoder_layer(1, 0)

    def test_cached_programs_not_mutated_by_execution(self, simulator):
        compiler = simulator.compiler
        before = {
            "step": tuple(compiler.compile_decoder_step().instructions),
            "embedding": tuple(compiler.compile_embedding(3).instructions),
            "lm_head": tuple(compiler.compile_lm_head().instructions),
            "layer": tuple(compiler.compile_decoder_layer(3, 0).instructions),
        }
        simulator.forward(np.array([4, 8, 15]))
        simulator.forward(np.array([16]))
        after = {
            "step": tuple(compiler.compile_decoder_step().instructions),
            "embedding": tuple(compiler.compile_embedding(3).instructions),
            "lm_head": tuple(compiler.compile_lm_head().instructions),
            "layer": tuple(compiler.compile_decoder_layer(3, 0).instructions),
        }
        assert before == after

    def test_decode_step_has_no_mask_and_four_syncs(self, simulator):
        program = simulator.compiler.compile_decoder_step()
        assert program.sync_count() == 4
        masked = [
            instruction
            for instruction in program.matrix_instructions()
            if instruction.opcode is MatrixOpcode.MASKED_MM
        ]
        assert masked, "decode step still uses the MaskedMM datapath"
        assert all(not instruction.apply_mask for instruction in masked)

    def test_segments_are_memoized_until_append(self):
        plan = build_partition_plan(GPT2_TEST_TINY, 2)
        program = DFXCompiler(GPT2_TEST_TINY, plan, 0).compile_decoder_layer(1, 0)
        first = program.segments()
        assert program.segments() is first
        program.append(
            MatrixInstruction(
                MatrixOpcode.MM, dst="x", input_operand="hidden_out",
                weight_operand="w_ffn2", rows=1, in_dim=2, out_dim=2,
            )
        )
        assert program.segments() is not first


class TestFastSlowBitExactness:
    """The linked fast path must match per-instruction execution bit for bit."""

    def _stage(self, simulator, hidden):
        registers = {"hidden": hidden.copy()}
        memory = dict(simulator._layer_memory[0][0])
        return FunctionalCore(numerics=FP16_DFX, registers=registers, memory=memory)

    def test_segment_execution_matches_instruction_execution(self, tiny_weights, rng):
        # One device, so the identity sync handler preserves program widths.
        simulator = DFXFunctionalSimulator(tiny_weights, num_devices=1, numerics=FP16_DFX)
        program = simulator.compiler.compile_decoder_layer(4, 0)
        hidden = rng.normal(size=(4, GPT2_TEST_TINY.n_embd)).astype(np.float16)

        fast = self._stage(simulator, hidden)
        slow = self._stage(simulator, hidden)

        def sync_handler(sync, local):
            # Single-device stand-in: the gather is the identity.
            return FP16_DFX.cast(np.concatenate([local], axis=-1))

        fast.execute(program, sync_handler)
        for instruction in program.instructions:
            slow.execute_instruction(instruction, sync_handler)

        assert set(slow.registers) <= set(fast.registers)
        for name, value in slow.registers.items():
            np.testing.assert_array_equal(
                fast.registers[name], value, err_msg=f"register {name}"
            )
        for name, value in slow.memory.items():
            expected = value.view() if isinstance(value, GrowableKV) else value
            actual = fast.memory[name]
            actual = actual.view() if isinstance(actual, GrowableKV) else actual
            np.testing.assert_array_equal(actual, expected, err_msg=f"memory {name}")

    def test_program_outputs_visible_on_every_core(self, simulator):
        simulator.forward(np.array([1, 2, 3]))
        for layer_cores in simulator._layer_cores:
            outputs = [core.registers["hidden_out"] for core in layer_cores]
            for other in outputs[1:]:
                np.testing.assert_array_equal(outputs[0], other)


class TestKVGrowthInCores:
    def test_store_kv_uses_growable_buffers(self, simulator):
        simulator.forward(np.array([7, 8]))
        memory = simulator._layer_memory[0][0]
        kv_buffers = [v for k, v in memory.items() if k.startswith("kv.")]
        assert kv_buffers, "expected KV buffers after a forward pass"
        assert all(isinstance(buffer, GrowableKV) for buffer in kv_buffers)
        assert all(buffer.length == 2 for buffer in kv_buffers)

    def test_generate_reserves_full_capacity_up_front(self, simulator):
        simulator.generate([1, 2, 3], max_new_tokens=8)
        memory = simulator._layer_memory[0][0]
        buffer = next(v for k, v in memory.items() if k.startswith("kv."))
        assert buffer.capacity >= 3 + 8
        assert buffer.length == 3 + 8 - 1  # last token is never fed back

    def test_reset_cache_keeps_capacity_and_matches_fresh_run(self, tiny_weights):
        warm = DFXFunctionalSimulator(tiny_weights, num_devices=2, numerics=FP16_DFX)
        first = warm.generate([9, 10, 11], max_new_tokens=6)
        warm.reset_cache()
        assert warm.kv_cache_length == 0
        again = warm.generate([9, 10, 11], max_new_tokens=6)
        fresh = DFXFunctionalSimulator(tiny_weights, num_devices=2, numerics=FP16_DFX)
        assert again == first == fresh.generate([9, 10, 11], max_new_tokens=6)

    def test_warm_generate_reserves_existing_buffers(self, simulator):
        # A short run leaves small warm buffers; a longer run after
        # reset_cache must re-reserve them up front rather than doubling
        # inside the decode loop.
        simulator.generate([1, 2], max_new_tokens=2)
        simulator.reset_cache()
        simulator.generate([1, 2, 3], max_new_tokens=20)
        memory = simulator._layer_memory[0][0]
        buffer = next(v for k, v in memory.items() if k.startswith("kv."))
        assert buffer.capacity >= 23

    def test_growable_kv_append_and_doubling(self):
        buffer = GrowableKV(cols=4, dtype=np.dtype(np.float32), reserve=2)
        rows = np.arange(8, dtype=np.float32).reshape(2, 4)
        for _ in range(10):
            buffer.append(rows)
        assert buffer.length == 20
        assert buffer.capacity >= 20
        np.testing.assert_array_equal(buffer.view()[:2], rows)
        np.testing.assert_array_equal(buffer.view()[18:], rows)


class TestScatterOwnership:
    def test_scatter_allocates_once_then_writes_in_place(self):
        core = FunctionalCore(numerics=FP16_DFX)
        core.registers["probs"] = np.ones((1, 4), dtype=np.float16)
        core.memory["values"] = np.eye(4, dtype=np.float16)
        instruction = MatrixInstruction(
            MatrixOpcode.MM, dst="attn", input_operand="probs",
            weight_operand="values", rows=1, in_dim=4, out_dim=4,
            dst_col_offset=0, dst_total_cols=8,
        )
        core.execute_instruction(instruction)
        first_buffer = core.registers["attn"]
        second = MatrixInstruction(
            MatrixOpcode.MM, dst="attn", input_operand="probs",
            weight_operand="values", rows=1, in_dim=4, out_dim=4,
            dst_col_offset=4, dst_total_cols=8,
        )
        core.execute_instruction(second)
        # Exclusively-owned buffer is reused in place, both halves populated.
        assert core.registers["attn"] is first_buffer
        np.testing.assert_array_equal(
            core.registers["attn"][0, :4], core.registers["attn"][0, 4:]
        )

    def test_scatter_copies_foreign_buffers(self):
        core = FunctionalCore(numerics=FP16_DFX)
        foreign = np.zeros((1, 8), dtype=np.float16)
        core.registers["attn"] = foreign
        core.registers["probs"] = np.ones((1, 4), dtype=np.float16)
        core.memory["values"] = np.eye(4, dtype=np.float16)
        instruction = MatrixInstruction(
            MatrixOpcode.MM, dst="attn", input_operand="probs",
            weight_operand="values", rows=1, in_dim=4, out_dim=4,
            dst_col_offset=0, dst_total_cols=8,
        )
        core.execute_instruction(instruction)
        # The foreign array must not be mutated in place.
        np.testing.assert_array_equal(foreign, np.zeros((1, 8), dtype=np.float16))
        assert core.registers["attn"] is not foreign


class TestBatchedEngine:
    """The batched multi-stream engine vs the sequential oracle."""

    PROMPTS = [[1, 2, 3], [4, 5], [6, 7, 8, 9], [10, 11], [3, 1, 4]]
    BUDGETS = [5, 3, 7, 1, 4]

    def _sequential(self, tiny_weights, prompts, budgets):
        outputs = []
        for prompt, budget in zip(prompts, budgets):
            fresh = DFXFunctionalSimulator(
                tiny_weights, num_devices=2, numerics=FP16_DFX
            )
            outputs.append(fresh.generate(list(prompt), budget))
        return outputs

    def test_ragged_batch_bit_identical_to_sequential(self, simulator, tiny_weights):
        batched = simulator.generate_batch(self.PROMPTS, self.BUDGETS)
        assert batched == self._sequential(tiny_weights, self.PROMPTS, self.BUDGETS)

    def test_batch_of_one_matches_unbatched(self, simulator, tiny_weights):
        batched = simulator.generate_batch([[9, 10, 11]], 6)
        fresh = DFXFunctionalSimulator(tiny_weights, num_devices=2, numerics=FP16_DFX)
        assert batched == [fresh.generate([9, 10, 11], 6)]

    def test_batch_of_one_compiles_no_batched_programs(self, simulator):
        simulator.generate_batch([[1, 2, 3]], 4)
        batched_names = [
            name for name in simulator.compiler.compile_counts
            if name.startswith("batched-")
        ]
        assert not batched_names, batched_names

    def test_cohort_join_mid_decode(self, simulator, tiny_weights):
        session = simulator.batched_session()
        first = session.admit([1, 2, 3], 6)
        second = session.admit([7, 8, 9], 6)
        session.step()  # prefill both as one cohort
        session.step()
        late = session.admit([4, 5, 6], 4)
        session.step()  # late stream prefills while the cohort decodes
        # Equal prompt lengths mean equal pasts two steps later: one cohort.
        while session.step():
            if len(session.cohort_sizes) == 1 and session.active_streams == 3:
                break
        session.run()
        expected = self._sequential(
            tiny_weights, [[1, 2, 3], [7, 8, 9], [4, 5, 6]], [6, 6, 4]
        )
        assert [session.outputs(s) for s in (first, second, late)] == expected

    def test_cohorts_merge_when_pasts_equalize(self, simulator):
        session = simulator.batched_session()
        session.admit([1, 2], 8)
        session.admit([3, 4], 8)
        session.step()  # cohort of 2 prefills at past 2
        # A 3-token prompt prefills at past 3 — exactly where the existing
        # cohort lands after this step's decode, so the two must merge.
        session.admit([5, 6, 7], 6)
        session.step()
        assert session.active_streams == 3
        assert session.cohort_sizes == [3]

    def test_randomized_sweep_bit_identical(self, tiny_weights, rng):
        simulator = DFXFunctionalSimulator(
            tiny_weights, num_devices=2, numerics=FP16_DFX
        )
        for _ in range(3):
            count = int(rng.integers(2, 6))
            prompts = [
                rng.integers(
                    0, GPT2_TEST_TINY.vocab_size, size=int(rng.integers(1, 7))
                ).tolist()
                for _ in range(count)
            ]
            budgets = [int(rng.integers(1, 8)) for _ in range(count)]
            batched = simulator.generate_batch(prompts, budgets)
            assert batched == self._sequential(tiny_weights, prompts, budgets)

    def test_arena_buffers_reused_across_sessions(self, tiny_weights):
        simulator = DFXFunctionalSimulator(
            tiny_weights, num_devices=2, numerics=FP16_DFX
        )
        first = simulator.generate_batch(self.PROMPTS, self.BUDGETS)
        state = simulator._batched
        arenas_before = [id(arena.data) for arena in state.pool.arenas]
        bytes_before = simulator.batched_kv_memory_bytes
        again = simulator.generate_batch(self.PROMPTS, self.BUDGETS)
        assert again == first
        # Same-shaped rerun fits the warm arenas: no reallocation at all.
        assert [id(arena.data) for arena in state.pool.arenas] == arenas_before
        assert simulator.batched_kv_memory_bytes == bytes_before

    def test_reclaim_releases_arena_memory_and_stays_correct(self, tiny_weights):
        simulator = DFXFunctionalSimulator(
            tiny_weights, num_devices=2, numerics=FP16_DFX
        )
        first = simulator.generate_batch(self.PROMPTS, self.BUDGETS)
        assert simulator.batched_kv_memory_bytes > 0
        simulator.reclaim_batched_kv()
        assert simulator.batched_kv_memory_bytes == 0
        assert simulator.generate_batch(self.PROMPTS, self.BUDGETS) == first

    def test_batched_engine_leaves_unbatched_kv_untouched(self, tiny_weights):
        simulator = DFXFunctionalSimulator(
            tiny_weights, num_devices=2, numerics=FP16_DFX
        )
        sequential = simulator.generate([5, 6, 7], 4)
        length_before = simulator.kv_cache_length
        simulator.generate_batch(self.PROMPTS, self.BUDGETS)
        assert simulator.kv_cache_length == length_before
        simulator.reset_cache()
        assert simulator.generate([5, 6, 7], 4) == sequential


class TestLinkedProgramStructure:
    def test_link_is_memoized_per_numerics_and_sharing_key(self, simulator):
        program = simulator.compiler.compile_decoder_step()
        plain = link_program(program, FP16_DFX)
        assert link_program(program, FP16_DFX) is plain
        shared = link_program(
            program, FP16_DFX,
            frozenset(("hidden",)), simulator._replicated_layer_names,
        )
        assert shared is not plain
        assert link_program(
            program, FP16_DFX,
            frozenset(("hidden",)), simulator._replicated_layer_names,
        ) is shared

    def test_shared_prefix_covers_layernorm(self, simulator):
        program = simulator.compiler.compile_decoder_step()
        linked = link_program(
            program, FP16_DFX,
            frozenset(("hidden",)), simulator._replicated_layer_names,
        )
        # Segment 0 starts with LayerNorm 1 — replicated across devices, so
        # it must be hoisted into the shared prefix.
        first = linked.segments[0]
        assert first.prefix is not None
        assert "lnorm1" in first.shared_out
