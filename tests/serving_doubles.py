"""Shared platform-model test doubles for the serving test modules."""

from repro.results import InferenceResult, StageLatency
from repro.workloads import Workload


class FixedLatencyPlatform:
    """Test double: every request takes exactly ``latency_s`` seconds."""

    def __init__(self, latency_s: float, power_watts: float = 100.0):
        self.latency_s = latency_s
        self.power_watts = power_watts

    def run(self, workload: Workload) -> InferenceResult:
        return InferenceResult(
            platform="fixed",
            model_name="test",
            workload=workload,
            num_devices=1,
            summarization=StageLatency(self.latency_s * 1e3 / 2),
            generation=StageLatency(self.latency_s * 1e3 / 2),
            total_power_watts=self.power_watts,
        )


class TokenProportionalPlatform:
    """Test double: service time is ``output_tokens * seconds_per_token``."""

    def __init__(self, seconds_per_token: float = 0.1):
        self.seconds_per_token = seconds_per_token

    def run(self, workload: Workload) -> InferenceResult:
        latency_ms = workload.output_tokens * self.seconds_per_token * 1e3
        return InferenceResult(
            platform="proportional",
            model_name="test",
            workload=workload,
            num_devices=1,
            summarization=StageLatency(0.0),
            generation=StageLatency(latency_ms),
            total_power_watts=10.0,
        )


class BatchableTokenPlatform:
    """Test double with the GPU batching interface.

    Mirrors the GPU baseline's shape: each decode step pays a fixed
    overhead regardless of batch size plus a marginal cost per extra
    batched row, so batching amortizes the fixed part.  Unbatched service
    time is ``output_tokens * fixed_ms_per_token`` milliseconds, and
    ``batched_request_latency_ms(w, 1)`` equals it exactly.
    """

    def __init__(self, fixed_ms_per_token: float = 100.0,
                 marginal_ms_per_token: float = 10.0,
                 power_watts: float = 50.0):
        self.fixed_ms_per_token = fixed_ms_per_token
        self.marginal_ms_per_token = marginal_ms_per_token
        self.power_watts = power_watts

    def batched_per_token_generation_ms(self, batch_size: int) -> float:
        """Per-request share of one decode step at ``batch_size``."""
        return (
            self.fixed_ms_per_token
            + (batch_size - 1) * self.marginal_ms_per_token
        ) / batch_size

    def batched_request_latency_ms(
        self, workload: Workload, batch_size: int, batch_gather_ms: float = 0.0
    ) -> float:
        step_ms = self.batched_per_token_generation_ms(batch_size) * batch_size
        return batch_gather_ms + workload.output_tokens * step_ms

    def run(self, workload: Workload) -> InferenceResult:
        return InferenceResult(
            platform="batchable",
            model_name="test",
            workload=workload,
            num_devices=1,
            summarization=StageLatency(0.0),
            generation=StageLatency(self.batched_request_latency_ms(workload, 1)),
            total_power_watts=self.power_watts,
        )
