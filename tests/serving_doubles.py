"""Shared platform-model test doubles for the serving test modules."""

from repro.results import InferenceResult, StageLatency
from repro.workloads import Workload


class FixedLatencyPlatform:
    """Test double: every request takes exactly ``latency_s`` seconds."""

    def __init__(self, latency_s: float, power_watts: float = 100.0):
        self.latency_s = latency_s
        self.power_watts = power_watts

    def run(self, workload: Workload) -> InferenceResult:
        return InferenceResult(
            platform="fixed",
            model_name="test",
            workload=workload,
            num_devices=1,
            summarization=StageLatency(self.latency_s * 1e3 / 2),
            generation=StageLatency(self.latency_s * 1e3 / 2),
            total_power_watts=self.power_watts,
        )


class TokenProportionalPlatform:
    """Test double: service time is ``output_tokens * seconds_per_token``."""

    def __init__(self, seconds_per_token: float = 0.1):
        self.seconds_per_token = seconds_per_token

    def run(self, workload: Workload) -> InferenceResult:
        latency_ms = workload.output_tokens * self.seconds_per_token * 1e3
        return InferenceResult(
            platform="proportional",
            model_name="test",
            workload=workload,
            num_devices=1,
            summarization=StageLatency(0.0),
            generation=StageLatency(latency_ms),
            total_power_watts=10.0,
        )
