"""Shared fixtures for the test suite.

Functional tests run on the tiny/small test configurations so the whole suite
stays fast; timing-model tests use the real paper configurations because the
analytical simulator is cheap regardless of model size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.appliance import DFXAppliance
from repro.model.config import GPT2_1_5B, GPT2_TEST_SMALL, GPT2_TEST_TINY
from repro.model.gpt2 import GPT2Model
from repro.model.numerics import FP16_DFX, FP32_EXACT
from repro.model.weights import GPT2Weights, generate_weights
from repro.parallel.partitioner import PartitionPlan, build_partition_plan


@pytest.fixture(scope="session")
def tiny_weights() -> GPT2Weights:
    """Synthetic weights for the tiny test configuration (2 layers, emb 64)."""
    return generate_weights(GPT2_TEST_TINY, seed=7)


@pytest.fixture(scope="session")
def small_weights() -> GPT2Weights:
    """Synthetic weights for the small test configuration (4 layers, emb 128)."""
    return generate_weights(GPT2_TEST_SMALL, seed=11)


@pytest.fixture(scope="session")
def tiny_model(tiny_weights: GPT2Weights) -> GPT2Model:
    """FP32 reference model on the tiny configuration."""
    return GPT2Model(tiny_weights, numerics=FP32_EXACT)


@pytest.fixture(scope="session")
def tiny_model_fp16_dfx(tiny_weights: GPT2Weights) -> GPT2Model:
    """DFX-numerics (FP16 + LUT GELU) model on the tiny configuration."""
    return GPT2Model(tiny_weights, numerics=FP16_DFX)


@pytest.fixture(scope="session")
def tiny_plan_2dev() -> PartitionPlan:
    """Two-device partition plan for the tiny configuration."""
    return build_partition_plan(GPT2_TEST_TINY, num_devices=2)


@pytest.fixture(scope="session")
def paper_plan_4dev() -> PartitionPlan:
    """Four-device partition plan for the 1.5B paper configuration."""
    return build_partition_plan(GPT2_1_5B, num_devices=4)


@pytest.fixture(scope="session")
def dfx_1_5b_4dev() -> DFXAppliance:
    """DFX appliance simulator for the paper's primary setup (1.5B, 4 FPGAs)."""
    return DFXAppliance(GPT2_1_5B, num_devices=4)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic random generator for per-test data."""
    return np.random.default_rng(1234)
