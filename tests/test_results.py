"""Tests for the shared InferenceResult / StageLatency containers."""

import pytest

from repro.errors import ConfigurationError
from repro.results import (
    DFX_BREAKDOWN_PHASES,
    GPU_BREAKDOWN_PHASES,
    InferenceResult,
    PHASE_FFN,
    PHASE_SELF_ATTENTION,
    PHASE_SYNC,
    StageLatency,
)
from repro.workloads import Workload


def _result(summ_ms=100.0, gen_ms=300.0, power=180.0, flops=1e12, out_tokens=64):
    return InferenceResult(
        platform="dfx",
        model_name="gpt2-1.5b",
        workload=Workload(64, out_tokens),
        num_devices=4,
        summarization=StageLatency(summ_ms, {PHASE_SELF_ATTENTION: summ_ms * 0.6,
                                             PHASE_FFN: summ_ms * 0.4}),
        generation=StageLatency(gen_ms, {PHASE_SELF_ATTENTION: gen_ms * 0.4,
                                         PHASE_FFN: gen_ms * 0.4,
                                         PHASE_SYNC: gen_ms * 0.2}),
        total_power_watts=power,
        flops=flops,
    )


class TestStageLatency:
    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            StageLatency(-1.0)

    def test_merge_adds_latencies_and_breakdowns(self):
        merged = StageLatency(10.0, {"a": 4.0}).merge(StageLatency(5.0, {"a": 1.0, "b": 2.0}))
        assert merged.latency_ms == 15.0
        assert merged.breakdown_ms == {"a": 5.0, "b": 2.0}


class TestInferenceResult:
    def test_total_latency(self):
        assert _result().latency_ms == pytest.approx(400.0)
        assert _result().latency_s == pytest.approx(0.4)

    def test_tokens_per_second(self):
        assert _result().tokens_per_second == pytest.approx(64 / 0.4)

    def test_energy_and_tokens_per_joule(self):
        result = _result()
        assert result.energy_joules == pytest.approx(180.0 * 0.4)
        assert result.tokens_per_joule == pytest.approx(64 / (180.0 * 0.4))

    def test_gflops(self):
        assert _result().gflops == pytest.approx(1e12 / 0.4 / 1e9)

    def test_combined_breakdown_sums_stages(self):
        breakdown = _result().breakdown_ms
        assert breakdown[PHASE_SELF_ATTENTION] == pytest.approx(100 * 0.6 + 300 * 0.4)
        assert breakdown[PHASE_SYNC] == pytest.approx(60.0)

    def test_breakdown_fractions_sum_to_one(self):
        fractions = _result().breakdown_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_stage_gflops_split_by_token_share(self):
        result = _result()
        # 64 input + 64 output tokens -> equal FLOP shares.
        assert result.summarization_gflops == pytest.approx(
            (1e12 * 0.5) / 0.1 / 1e9
        )
        assert result.generation_gflops == pytest.approx((1e12 * 0.5) / 0.3 / 1e9)

    def test_phase_constant_sets(self):
        assert PHASE_SYNC in DFX_BREAKDOWN_PHASES
        assert PHASE_SYNC not in GPU_BREAKDOWN_PHASES
        assert len(DFX_BREAKDOWN_PHASES) == 5
        assert len(GPU_BREAKDOWN_PHASES) == 4
