"""Tests for the GPU batching model (paper Sec. III-A).

The paper's argument: batching raises GPU utilization/throughput, but the
latency cost of gathering a batch from independent user requests makes
datacenters run text generation unbatched — which is the regime DFX targets.
"""

import pytest

from repro.baselines.gpu import GPUAppliance
from repro.errors import ConfigurationError
from repro.model.config import GPT2_1_5B
from repro.workloads import Workload


@pytest.fixture(scope="module")
def gpu():
    return GPUAppliance(GPT2_1_5B, num_devices=4)


class TestBatchedThroughput:
    def test_per_request_cost_drops_with_batch_size(self, gpu):
        unbatched = gpu.batched_per_token_generation_ms(1)
        batched_8 = gpu.batched_per_token_generation_ms(8)
        batched_32 = gpu.batched_per_token_generation_ms(32)
        assert batched_8 < unbatched
        assert batched_32 < batched_8

    def test_unbatched_matches_standard_model(self, gpu):
        assert gpu.batched_per_token_generation_ms(1) == pytest.approx(
            gpu.per_token_generation_ms()
        )

    def test_amortization_saturates(self, gpu):
        # The marginal compute per extra batch row bounds the gain: going from
        # batch 32 to 64 saves far less than going from 1 to 2.
        gain_small = gpu.batched_per_token_generation_ms(1) - gpu.batched_per_token_generation_ms(2)
        gain_large = gpu.batched_per_token_generation_ms(32) - gpu.batched_per_token_generation_ms(64)
        assert gain_small > 5 * gain_large

    def test_invalid_batch_size(self, gpu):
        with pytest.raises(ConfigurationError):
            gpu.batched_per_token_generation_ms(0)


class TestBatchedLatency:
    def test_batching_without_gather_time_does_not_reduce_request_latency_much(self, gpu):
        # Every batched request still waits for the whole batch's tokens.
        workload = Workload(32, 32)
        unbatched = gpu.run(workload).latency_ms
        batched = gpu.batched_request_latency_ms(workload, batch_size=8)
        assert batched > 0.8 * unbatched

    def test_gather_time_adds_directly_to_latency(self, gpu):
        workload = Workload(32, 32)
        fast = gpu.batched_request_latency_ms(workload, 8, batch_gather_ms=0.0)
        slow = gpu.batched_request_latency_ms(workload, 8, batch_gather_ms=500.0)
        assert slow == pytest.approx(fast + 500.0)

    def test_negative_gather_time_rejected(self, gpu):
        with pytest.raises(ConfigurationError):
            gpu.batched_request_latency_ms(Workload(32, 8), 4, batch_gather_ms=-1.0)

    def test_dfx_unbatched_still_beats_batched_gpu_latency(self, gpu):
        # Even granting the GPU a full batch of 8 with a modest 1-second
        # gather window, per-request latency stays above DFX's unbatched run.
        from repro.core.appliance import DFXAppliance

        workload = Workload(32, 32)
        dfx = DFXAppliance(GPT2_1_5B, num_devices=4).run(workload).latency_ms
        gpu_batched = gpu.batched_request_latency_ms(workload, 8, batch_gather_ms=1000.0)
        assert dfx < gpu_batched
