"""End-to-end integration tests across the whole library.

These tests tie the layers together the way the benchmarks and examples do:
reference model vs functional DFX simulator on real generation loops, the
performance simulator vs the GPU baseline on paper workloads, and the
headline claims (speedup / throughput / energy / cost) in one place.
"""

import numpy as np
import pytest

from repro.analysis.cost import cost_comparison
from repro.analysis.metrics import average_speedup, pair_results
from repro.baselines.gpu import GPUAppliance
from repro.core.appliance import DFXAppliance
from repro.core.functional import DFXFunctionalSimulator
from repro.model.config import GPT2_1_5B, GPT2_345M, GPT2_TEST_TINY
from repro.model.generation import TextGenerator
from repro.model.gpt2 import GPT2Model
from repro.model.numerics import FP16_DFX
from repro.model.weights import generate_weights
from repro.workloads import Workload


class TestFunctionalEquivalenceOnGenerationLoop:
    """The compiled DFX pipeline generates the same text as the reference model."""

    def test_four_device_cluster_matches_text_generator(self):
        weights = generate_weights(GPT2_TEST_TINY, seed=21)
        reference = GPT2Model(weights, numerics=FP16_DFX)
        generator = TextGenerator(reference)
        prompt = [17, 301, 58, 444]

        expected = generator.generate_tokens(prompt, max_new_tokens=5)
        simulator = DFXFunctionalSimulator(weights, num_devices=4, numerics=FP16_DFX)
        produced = simulator.generate(prompt, max_new_tokens=5)

        assert produced == expected.output_token_ids


class TestHeadlineClaims:
    """The paper's headline numbers, reproduced end to end (coarse tolerance)."""

    @pytest.fixture(scope="class")
    def grid_results(self):
        workloads = [Workload(32, 16), Workload(64, 64), Workload(128, 256)]
        gpu = GPUAppliance(GPT2_1_5B, num_devices=4).run_many(workloads)
        dfx = DFXAppliance(GPT2_1_5B, num_devices=4).run_many(workloads)
        return pair_results(gpu, dfx)

    def test_dfx_beats_gpu_on_generation_heavy_workloads(self, grid_results):
        for row in grid_results:
            assert row.speedup > 1.5

    def test_average_speedup_order_of_magnitude(self, grid_results):
        # The full-grid number is 5.58x in the paper; a generation-heavy
        # subset should land in the same band.
        assert 3.0 < average_speedup(grid_results) < 12.0

    def test_energy_efficiency_gain(self, grid_results):
        for row in grid_results:
            assert row.energy_efficiency_ratio > 1.5

    def test_speedup_attenuates_with_input_size(self):
        gpu = GPUAppliance(GPT2_1_5B, num_devices=4)
        dfx = DFXAppliance(GPT2_1_5B, num_devices=4)
        small_input = gpu.run(Workload(32, 16)).latency_ms / dfx.run(Workload(32, 16)).latency_ms
        large_input = gpu.run(Workload(128, 16)).latency_ms / dfx.run(Workload(128, 16)).latency_ms
        assert large_input < small_input

    def test_gpu_wins_when_input_output_ratio_is_extreme(self):
        # "As long as the ratio between the input and output lengths is lower
        #  than 4:1 ... DFX performs better" — so at a much larger ratio the
        #  GPU appliance should win.
        gpu = GPUAppliance(GPT2_1_5B, num_devices=4)
        dfx = DFXAppliance(GPT2_1_5B, num_devices=4)
        workload = Workload(512, 1)
        assert gpu.run(workload).latency_ms < dfx.run(workload).latency_ms

    def test_cost_effectiveness_gain_band(self):
        workload = Workload(64, 64)
        gpu = GPUAppliance(GPT2_1_5B, num_devices=4).run(workload)
        dfx = DFXAppliance(GPT2_1_5B, num_devices=4).run(workload)
        comparison = cost_comparison(gpu, dfx)
        # Paper: 8.21x more cost-effective.
        assert 5.0 < comparison.cost_effectiveness_gain < 13.0


class TestScalabilityShape:
    def test_throughput_increases_but_sublinearly(self):
        workload = Workload(64, 64)
        throughputs = [
            DFXAppliance(GPT2_345M, num_devices=count).run(workload).tokens_per_second
            for count in (1, 2, 4)
        ]
        assert throughputs[0] < throughputs[1] < throughputs[2]
        # Paper Fig. 18: ~1.5x per doubling, clearly below 2x.
        assert 1.2 < throughputs[1] / throughputs[0] < 1.9
        assert 1.2 < throughputs[2] / throughputs[1] < 1.9
