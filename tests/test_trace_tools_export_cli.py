"""Tests for trace inspection tools, JSON export, and the command-line interface."""

import json

import pytest

from repro.analysis.export import (
    comparison_grid_to_dict,
    read_json,
    result_to_dict,
    write_json,
)
from repro.analysis.metrics import pair_results
from repro.baselines.gpu import GPUAppliance
from repro.cli import EXPERIMENT_RUNNERS, build_parser, main
from repro.core.appliance import DFXAppliance
from repro.core.dma import DMAModel
from repro.core.mpu import MPUModel
from repro.core.router import RouterModel
from repro.core.scheduler import TimingScheduler
from repro.core.trace_tools import (
    critical_path_phases,
    idle_gaps,
    overlap_efficiency,
    render_gantt,
    unit_occupancies,
)
from repro.core.vpu import VPUModel
from repro.errors import ConfigurationError
from repro.isa.compiler import DFXCompiler
from repro.model.config import GPT2_345M, GPT2_1_5B
from repro.parallel.partitioner import build_partition_plan
from repro.workloads import Workload


@pytest.fixture(scope="module")
def traced_timing():
    plan = build_partition_plan(GPT2_1_5B, 4)
    program = DFXCompiler(GPT2_1_5B, plan, 0).compile_decoder_layer(1, 64)
    scheduler = TimingScheduler(MPUModel(), VPUModel(), DMAModel(), RouterModel(4))
    return scheduler.time_program(program, keep_traces=True)


@pytest.fixture(scope="module")
def untraced_timing():
    plan = build_partition_plan(GPT2_1_5B, 4)
    program = DFXCompiler(GPT2_1_5B, plan, 0).compile_decoder_layer(1, 64)
    scheduler = TimingScheduler(MPUModel(), VPUModel(), DMAModel(), RouterModel(4))
    return scheduler.time_program(program, keep_traces=False)


class TestTraceTools:
    def test_unit_occupancies_cover_all_units(self, traced_timing):
        occupancies = {o.unit: o for o in unit_occupancies(traced_timing)}
        assert {"mpu", "vpu", "dma", "router"} <= set(occupancies)
        assert all(0 < o.utilization <= 1.0 for o in occupancies.values())
        # The MPU is the busiest unit of a decoder layer.
        assert occupancies["mpu"].busy_cycles == max(
            o.busy_cycles for o in occupancies.values()
        )

    def test_untraced_timing_rejected(self, untraced_timing):
        with pytest.raises(ConfigurationError):
            unit_occupancies(untraced_timing)
        with pytest.raises(ConfigurationError):
            render_gantt(untraced_timing)

    def test_idle_gaps_are_ordered_intervals(self, traced_timing):
        gaps = idle_gaps(traced_timing, "mpu")
        for start, end in gaps:
            assert end > start
        assert idle_gaps(traced_timing, "nonexistent-unit") == []

    def test_render_gantt_shape(self, traced_timing):
        chart = render_gantt(traced_timing, max_instructions=10, width=40)
        lines = chart.splitlines()
        assert len(lines) == 11  # header + 10 instructions
        assert all("|" in line for line in lines[1:])
        with pytest.raises(ConfigurationError):
            render_gantt(traced_timing, max_instructions=0)

    def test_critical_path_phases_ranked(self, traced_timing):
        phases = critical_path_phases(traced_timing, top=3)
        assert len(phases) == 3
        shares = [share for _, share in phases]
        assert shares == sorted(shares, reverse=True)

    def test_overlap_efficiency_close_to_serial_or_better(self, traced_timing):
        # A decoder layer is dependency-dominated, so the schedule is close to
        # serial; pipeline drain can push the ratio slightly below 1.0, real
        # overlap pushes it above.
        efficiency = overlap_efficiency(traced_timing)
        assert 0.8 < efficiency < 4.0


class TestExport:
    def test_result_round_trip(self, tmp_path):
        result = DFXAppliance(GPT2_345M, num_devices=1).run(Workload(32, 4))
        payload = result_to_dict(result)
        path = write_json(payload, tmp_path / "result.json")
        loaded = read_json(path)
        assert loaded["platform"] == "dfx"
        assert loaded["workload"]["label"] == "[32:4]"
        assert loaded["latency_ms"] == pytest.approx(result.latency_ms)
        # The file is valid JSON (no NumPy scalars leaked through).
        json.loads(path.read_text())

    def test_comparison_grid_export(self):
        workloads = [Workload(32, 1), Workload(32, 4)]
        gpu = GPUAppliance(GPT2_345M, 1).run_many(workloads)
        dfx = DFXAppliance(GPT2_345M, 1).run_many(workloads)
        payload = comparison_grid_to_dict(pair_results(gpu, dfx))
        assert len(payload["rows"]) == 2
        assert payload["average_speedup"] > 0


class TestCLI:
    def test_parser_covers_both_commands(self):
        parser = build_parser()
        run_args = parser.parse_args(["run", "--model", "345m", "--devices", "1"])
        assert run_args.command == "run"
        experiment_args = parser.parse_args(["experiment", "figure18"])
        assert experiment_args.name == "figure18"

    def test_run_command_prints_table(self, capsys):
        exit_code = main([
            "run", "--model", "345m", "--devices", "1",
            "--input", "32", "--output", "4", "--compare-gpu",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "DFX" in output and "GPU appliance" in output
        assert "speedup" in output

    def test_run_command_writes_json(self, tmp_path, capsys):
        destination = tmp_path / "out.json"
        exit_code = main([
            "run", "--model", "345m", "--devices", "1",
            "--input", "32", "--output", "4", "--json", str(destination),
        ])
        assert exit_code == 0
        assert destination.exists()
        assert read_json(destination)["model"] == "gpt2-345m"

    def test_experiment_command_table1(self, capsys):
        exit_code = main(["experiment", "table1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "gpt2-1.5b" in output

    def test_experiment_registry_names(self):
        assert {"figure14", "figure15", "table2", "accuracy"} <= set(EXPERIMENT_RUNNERS)

    def test_unknown_experiment_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])


class TestCLIServe:
    def test_parser_covers_serve(self):
        args = build_parser().parse_args([
            "serve", "--backend", "gpu", "--model", "test-small",
            "--batch-policy", "dynamic", "--rate", "2.5",
        ])
        assert args.command == "serve"
        assert args.backend == "gpu"
        assert args.batch_policy == "dynamic"
        assert args.rate == 2.5

    def test_serve_synthetic_trace_on_dfx(self, capsys):
        exit_code = main([
            "serve", "--backend", "dfx", "--model", "test-tiny",
            "--rate", "2", "--duration", "10", "--clusters", "2",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "backend dfx: 2 cluster(s)" in output
        assert "p95 response (s)" in output
        assert "output tokens/s" in output

    def test_serve_batched_gpu_reports_batch_stats(self, capsys):
        exit_code = main([
            "serve", "--backend", "gpu", "--model", "test-tiny",
            "--batch-policy", "dynamic", "--rate", "4", "--duration", "10",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "batch_policy=dynamic" in output
        assert "mean batch size" in output

    def test_serve_replays_a_recorded_log(self, tmp_path, capsys):
        log = tmp_path / "requests.csv"
        log.write_text(
            "arrival_time_s,input_tokens,output_tokens\n"
            "0.0,8,8\n0.5,8,4\n1.5,4,8\n"
        )
        exit_code = main([
            "serve", "--backend", "tpu", "--model", "test-tiny",
            "--trace", str(log),
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "serving 3 requests" in output
        assert str(log) in output

    def test_serve_with_service_levels_reports_slo(self, capsys):
        exit_code = main([
            "serve", "--backend", "dfx", "--model", "test-tiny",
            "--rate", "2", "--duration", "10", "--slo-s", "5",
        ])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "SLO attainment" in output

    def test_serve_slo_override_keeps_replayed_service_levels(self, tmp_path,
                                                              capsys):
        # --slo-s must only set the SLO: the log's own priorities, patience,
        # and service classes survive (a priority scheduler still sees them).
        log = tmp_path / "requests.csv"
        log.write_text(
            "arrival_time_s,input_tokens,output_tokens,priority,service_class\n"
            "0.0,8,8,5,interactive\n0.2,8,8,0,batch\n"
        )
        exit_code = main([
            "serve", "--backend", "dfx", "--model", "test-tiny",
            "--trace", str(log), "--slo-s", "8", "--scheduler", "priority",
        ])
        assert exit_code == 0
        assert "SLO attainment" in capsys.readouterr().out
        from repro.serving import replay_trace
        replayed = replay_trace(log)
        assert [r.priority for r in replayed] == [5, 0]
        assert [r.service_class for r in replayed] == ["interactive", "batch"]

    def test_serve_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "npu"])
