"""Setup shim.

The project is configured in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments whose pip/setuptools/wheel trio is
too old for PEP 660 editable installs (legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
