#!/usr/bin/env python
"""Hot-path throughput benchmark and perf-regression gate.

Times greedy generation (tokens/sec) for the two decode engines the repo
cares about — the DFX functional simulator and the reference GPT-2 model —
at several generation lengths, and writes the results to a per-config file
at the repo root (``BENCH_hotpath.json`` for the tiny config,
``BENCH_hotpath_small.json`` for small).  That file is the committed perf
baseline: ``--check`` re-measures and fails (exit 1) when any engine regresses
by more than the tolerance (default 30%), which CI can run as a smoke gate.
Generation lengths also default per config — the small model's longer
context window defaults to longer decodes (64/128/240 tokens).

``--check-ratio`` is the hardware-independent companion gate: instead of the
machine-specific absolute tokens/sec floor, it compares the *ratio* of
functional-sim to reference-model throughput at each generation length
against the same ratio in the committed baseline.  Both engines run on the
same machine in the same process, so host speed cancels out and the gate
catches regressions of the functional-sim hot path relative to the
reference model even on runners much slower than the baseline machine.

Methodology: each measurement reports the best of ``--repeats`` runs on a
freshly constructed engine, after one warm-up generation that populates the
program/link caches (steady-state throughput is the quantity the paper's
generation-stage analysis is about; the caches are per-process one-time cost).

Examples::

    PYTHONPATH=src python scripts/bench_hotpath.py             # refresh baseline
    PYTHONPATH=src python scripts/bench_hotpath.py --check     # regression gate
    PYTHONPATH=src python scripts/bench_hotpath.py --tokens 16 64 --repeats 5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.backends import available_backends, make_backend  # noqa: E402
from repro.core.functional import DFXFunctionalSimulator  # noqa: E402
from repro.model.config import GPT2_TEST_SMALL, GPT2_TEST_TINY  # noqa: E402
from repro.model.generation import TextGenerator  # noqa: E402
from repro.model.gpt2 import GPT2Model  # noqa: E402
from repro.model.numerics import FP16_DFX  # noqa: E402
from repro.model.weights import generate_weights  # noqa: E402

SCHEMA_VERSION = 1
CONFIGS = {"tiny": GPT2_TEST_TINY, "small": GPT2_TEST_SMALL}
#: Each config gets its own committed baseline file so benching one never
#: clobbers the other's CI reference numbers.
DEFAULT_OUTPUTS = {
    "tiny": REPO_ROOT / "BENCH_hotpath.json",
    "small": REPO_ROOT / "BENCH_hotpath_small.json",
}
#: Default generation lengths per config: the small model's 256-position
#: window admits much longer decodes (prompt 4 + tokens + 2 must fit), and
#: longer generations are where KV-cache growth actually shows up.
DEFAULT_TOKENS = {
    "tiny": [16, 32, 64],
    "small": [64, 128, 240],
}
PROMPT = [5, 111, 42, 7]
#: The engines the committed baseline tracks (and the default bench set).
DEFAULT_ENGINES = ("functional-sim", "reference-model")
#: Batched-engine baselines live in their own committed files: the batched
#: report has a different shape (batch column, aggregate + per-stream
#: numbers), so it must never clobber the single-stream baselines above.
DEFAULT_BATCHED_OUTPUTS = {
    "tiny": REPO_ROOT / "BENCH_hotpath_batched.json",
    "small": REPO_ROOT / "BENCH_hotpath_batched_small.json",
}
DEFAULT_BATCHES = [1, 2, 4, 8]
#: One generation length per config for the batched sweep (the batch axis is
#: the variable under study; length 32 is the committed single-stream midpoint).
DEFAULT_BATCHED_TOKENS = {"tiny": 32, "small": 64}


def _time_best(factory, new_tokens: int, repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` fresh engines (post warm-up)."""
    best = float("inf")
    for _ in range(repeats):
        generate, reset = factory()
        generate(2)  # warm program / link / weight-staging caches
        reset()
        start = time.perf_counter()
        generate(new_tokens)
        best = min(best, time.perf_counter() - start)
    return best


def _functional_factory(weights, num_devices):
    def factory():
        simulator = DFXFunctionalSimulator(
            weights, num_devices=num_devices, numerics=FP16_DFX
        )
        generate = lambda n: simulator.generate(PROMPT, max_new_tokens=n)  # noqa: E731
        reset = getattr(simulator, "reset_cache", None)
        if reset is None:  # pre-optimization engine: fresh state per request
            def reset():
                simulator.__init__(weights, num_devices=num_devices, numerics=FP16_DFX)
        return generate, reset
    return factory


def _reference_factory(weights):
    def factory():
        generator = TextGenerator(GPT2Model(weights, numerics=FP16_DFX))
        # generate_tokens builds a fresh cache per call; nothing to reset.
        return (
            lambda n: generator.generate_tokens(PROMPT, max_new_tokens=n),
            lambda: None,
        )
    return factory


def _backend_factory(backend_name, weights, config, num_devices):
    """Bench a registered backend's functional generation path.

    The backend is rebuilt per repeat (like the other engines) and must
    declare ``generates_tokens`` in its capabilities — analytic backends
    have no hot path to measure.  ``dfx-sim`` measures the runtime stack:
    per-request simulator construction plus the decode loop.
    """
    probe = make_backend(backend_name, config=config, devices=num_devices)
    if not probe.capabilities().generates_tokens:
        raise SystemExit(
            f"engine {backend_name!r} cannot be benchmarked: its capabilities "
            f"report generates_tokens=False (nothing executes a hot path)"
        )

    def factory():
        backend = make_backend(
            backend_name, config=config, devices=num_devices, weights=weights
        )
        # The runtime builds a fresh functional simulator per request, so
        # each generate call is already a clean run; nothing to reset.
        return (
            lambda n: backend.generate(PROMPT, max_new_tokens=n),
            lambda: None,
        )
    return factory


def _resolve_engines(engines, weights, config, num_devices):
    """Map engine names (built-in or registered backends) to factories."""
    factories = {}
    for name in engines:
        if name == "functional-sim":
            factories[name] = _functional_factory(weights, num_devices)
        elif name == "reference-model":
            factories[name] = _reference_factory(weights)
        elif name in available_backends():
            factories[name] = _backend_factory(name, weights, config, num_devices)
        else:
            raise SystemExit(
                f"unknown engine {name!r}; built-ins: {list(DEFAULT_ENGINES)}, "
                f"registered backends: {available_backends()}"
            )
    return factories


def run_benchmark(config_name: str, tokens: list[int], repeats: int,
                  num_devices: int,
                  engines: tuple[str, ...] = DEFAULT_ENGINES) -> dict:
    """Measure every requested engine at every generation length."""
    config = CONFIGS[config_name]
    weights = generate_weights(config, seed=7)
    engines = _resolve_engines(engines, weights, config, num_devices)
    entries = []
    for engine_name, factory in engines.items():
        for new_tokens in tokens:
            if len(PROMPT) + new_tokens + 2 > config.n_positions:
                print(f"  skip {engine_name} @ {new_tokens}: exceeds context")
                continue
            seconds = _time_best(factory, new_tokens, repeats)
            rate = new_tokens / seconds
            entries.append({
                "engine": engine_name,
                "new_tokens": new_tokens,
                "seconds": round(seconds, 6),
                "tokens_per_second": round(rate, 1),
            })
            print(f"  {engine_name:16s} {new_tokens:4d} tokens: "
                  f"{seconds * 1e3:8.2f} ms  {rate:9.1f} tok/s")
    return {
        "schema": SCHEMA_VERSION,
        "config": config_name,
        "model": config.name,
        "num_devices": num_devices,
        "prompt_tokens": len(PROMPT),
        "repeats": repeats,
        "entries": entries,
    }


def run_batched_benchmark(config_name: str, batches: list[int], new_tokens: int,
                          repeats: int, num_devices: int) -> dict:
    """Measure the batched functional engine across cohort sizes.

    Every batch size runs ``batch`` identical prompts as one lockstep cohort
    through ``generate_batch`` on a fresh simulator (best of ``repeats``,
    after a warm-up that populates the program/link caches and the KV slot
    arenas).  All streams finish together, so the cohort's wall clock *is*
    each stream's latency; aggregate tokens/sec is what batching buys.
    """
    config = CONFIGS[config_name]
    weights = generate_weights(config, seed=7)
    if len(PROMPT) + new_tokens + 2 > config.n_positions:
        raise SystemExit(
            f"{new_tokens} tokens exceeds the {config_name} context window"
        )
    entries = []
    single_rate = None
    for batch in batches:
        prompts = [list(PROMPT)] * batch
        best = float("inf")
        for _ in range(repeats):
            simulator = DFXFunctionalSimulator(
                weights, num_devices=num_devices, numerics=FP16_DFX
            )
            simulator.generate_batch(prompts, 2)  # warm caches + arenas
            start = time.perf_counter()
            simulator.generate_batch(prompts, new_tokens)
            best = min(best, time.perf_counter() - start)
        aggregate = batch * new_tokens / best
        if batch == 1:
            single_rate = aggregate
        entry = {
            "batch": batch,
            "new_tokens": new_tokens,
            "seconds": round(best, 6),
            "aggregate_tokens_per_second": round(aggregate, 1),
            "per_stream_latency_ms": round(best * 1e3, 3),
            "tokens_per_second_per_stream": round(new_tokens / best, 1),
        }
        if single_rate is not None:
            entry["scaling_vs_single"] = round(aggregate / single_rate, 3)
        entries.append(entry)
        print(f"  batch {batch:3d} x {new_tokens} tokens: "
              f"{best * 1e3:8.2f} ms/stream  {aggregate:9.1f} agg tok/s"
              + (f"  ({entry['scaling_vs_single']:.2f}x single)"
                 if "scaling_vs_single" in entry else ""))
    return {
        "schema": SCHEMA_VERSION,
        "config": config_name,
        "model": config.name,
        "num_devices": num_devices,
        "prompt_tokens": len(PROMPT),
        "repeats": repeats,
        "mode": "batched",
        "entries": entries,
    }


def check_batched_regression(report: dict, committed_path: Path,
                             tolerance: float, ratio_tolerance: float) -> int:
    """Gate the batched engine on absolute floors and batching scaling.

    Two checks per committed batch size: the machine-dependent aggregate
    tokens/sec floor (``tolerance``), and the hardware-independent
    batched/single scaling ratio (``ratio_tolerance``) — batch 1 and batch N
    run on the same host in the same process, so host speed cancels out of
    the ratio and a loss of weight-stream amortization shows up anywhere.
    """
    if not committed_path.exists():
        print(f"ERROR: no committed baseline at {committed_path}")
        return 1
    committed = json.loads(committed_path.read_text())
    reference = {
        entry["batch"]: entry for entry in committed.get("entries", [])
    }
    measured = {entry["batch"]: entry for entry in report.get("entries", [])}
    failures = []
    compared = 0
    for batch, baseline in sorted(reference.items()):
        if batch not in measured:
            continue
        compared += 1
        floor = baseline["aggregate_tokens_per_second"] * (1.0 - tolerance)
        rate = measured[batch]["aggregate_tokens_per_second"]
        if rate < floor:
            failures.append(
                f"batch {batch}: {rate:.1f} agg tok/s < floor {floor:.1f} "
                f"(committed {baseline['aggregate_tokens_per_second']:.1f}, "
                f"tolerance {tolerance:.0%})"
            )
        baseline_scaling = baseline.get("scaling_vs_single")
        scaling = measured[batch].get("scaling_vs_single")
        if baseline_scaling and scaling:
            scaling_floor = baseline_scaling * (1.0 - ratio_tolerance)
            if scaling < scaling_floor:
                failures.append(
                    f"batch {batch}: scaling {scaling:.2f}x single < floor "
                    f"{scaling_floor:.2f}x (committed {baseline_scaling:.2f}x, "
                    f"tolerance {ratio_tolerance:.0%})"
                )
    if failures:
        print("BATCHED PERF REGRESSION DETECTED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    if compared == 0:
        print("ERROR: no measured batch size matches the committed baseline "
              "— nothing was checked")
        return 1
    print(f"batched perf check OK: {compared} batch sizes within "
          f"{tolerance:.0%} (absolute) / {ratio_tolerance:.0%} (scaling) "
          f"of the baseline")
    return 0


def embed_baseline(report: dict, baseline_path: Path) -> None:
    """Attach pre-optimization numbers (same schema) and speedups in place."""
    baseline = json.loads(baseline_path.read_text())
    reference = {
        (entry["engine"], entry["new_tokens"]): entry["tokens_per_second"]
        for entry in baseline.get("entries", [])
    }
    for entry in report["entries"]:
        key = (entry["engine"], entry["new_tokens"])
        if key in reference:
            entry["baseline_tokens_per_second"] = reference[key]
            entry["speedup"] = round(entry["tokens_per_second"] / reference[key], 2)


def check_regression(report: dict, committed_path: Path, tolerance: float) -> int:
    """Compare a fresh measurement against the committed baseline.

    Returns a process exit code: 0 when every engine is within ``tolerance``
    of its committed tokens/sec, 1 otherwise (or when the baseline is absent).
    """
    if not committed_path.exists():
        print(f"ERROR: no committed baseline at {committed_path}")
        return 1
    committed = json.loads(committed_path.read_text())
    reference = {
        (entry["engine"], entry["new_tokens"]): entry["tokens_per_second"]
        for entry in committed.get("entries", [])
    }
    failures = []
    compared = 0
    for entry in report["entries"]:
        key = (entry["engine"], entry["new_tokens"])
        if key not in reference:
            continue
        compared += 1
        floor = reference[key] * (1.0 - tolerance)
        if entry["tokens_per_second"] < floor:
            failures.append(
                f"{key[0]} @ {key[1]} tokens: {entry['tokens_per_second']:.1f} tok/s "
                f"< floor {floor:.1f} (committed {reference[key]:.1f}, "
                f"tolerance {tolerance:.0%})"
            )
    if failures:
        print("PERF REGRESSION DETECTED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    if compared == 0:
        print("ERROR: no measured entry matches the committed baseline "
              "(config/tokens mismatch?) — nothing was checked")
        return 1
    print(f"perf check OK: {compared} entries within {tolerance:.0%} of the baseline")
    return 0


def _engine_ratios(report: dict) -> dict[int, float]:
    """functional-sim / reference-model tokens/sec per generation length."""
    by_key = {
        (entry["engine"], entry["new_tokens"]): entry["tokens_per_second"]
        for entry in report.get("entries", [])
    }
    ratios = {}
    for engine, new_tokens in by_key:
        if engine != "functional-sim":
            continue
        reference = by_key.get(("reference-model", new_tokens))
        if reference:
            ratios[new_tokens] = by_key[(engine, new_tokens)] / reference
    return ratios


def check_ratio_regression(report: dict, committed_path: Path, tolerance: float) -> int:
    """Hardware-independent gate on the functional-vs-reference ratio.

    Compares the measured functional-sim / reference-model tokens/sec ratio
    at each generation length against the committed baseline's ratio.  Host
    speed cancels out of the ratio, so this gate holds on runners much
    slower (or faster) than the machine that refreshed the baseline.

    Returns a process exit code: 0 when every measured ratio is within
    ``tolerance`` of the committed one, 1 otherwise (or when the baseline
    is absent or shares no comparable generation length).
    """
    if not committed_path.exists():
        print(f"ERROR: no committed baseline at {committed_path}")
        return 1
    committed = _engine_ratios(json.loads(committed_path.read_text()))
    measured = _engine_ratios(report)
    failures = []
    compared = 0
    for new_tokens, baseline_ratio in sorted(committed.items()):
        if new_tokens not in measured:
            continue
        compared += 1
        floor = baseline_ratio * (1.0 - tolerance)
        if measured[new_tokens] < floor:
            failures.append(
                f"@ {new_tokens} tokens: functional/reference ratio "
                f"{measured[new_tokens]:.3f} < floor {floor:.3f} "
                f"(committed {baseline_ratio:.3f}, tolerance {tolerance:.0%})"
            )
    if failures:
        print("RELATIVE PERF REGRESSION DETECTED (functional-sim fell behind "
              "the reference model):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    if compared == 0:
        print("ERROR: no generation length has both engines in both the "
              "measurement and the committed baseline — no ratio was checked")
        return 1
    print(f"ratio check OK: {compared} functional/reference ratios within "
          f"{tolerance:.0%} of the baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    def positive(value: str) -> int:
        parsed = int(value)
        if parsed <= 0:
            raise argparse.ArgumentTypeError(f"must be positive, got {value}")
        return parsed

    parser.add_argument("--config", choices=sorted(CONFIGS), default="tiny")
    parser.add_argument("--batch", type=positive, nargs="+", default=None,
                        metavar="B",
                        help="bench the batched functional engine at these "
                             "cohort sizes (e.g. --batch 1 2 4 8) instead of "
                             "the single-stream engines; writes the batched "
                             "baseline (BENCH_hotpath_batched.json for tiny)")
    parser.add_argument("--tokens", type=positive, nargs="+", default=None,
                        help="generation lengths; default depends on --config "
                             f"({', '.join(f'{k}: {v}' for k, v in DEFAULT_TOKENS.items())})")
    parser.add_argument("--repeats", type=positive, default=3)
    parser.add_argument("--engines", nargs="+", default=list(DEFAULT_ENGINES),
                        metavar="ENGINE",
                        help="engines to bench: the built-ins "
                             "(functional-sim, reference-model) and/or any "
                             "registered backend name with a functional "
                             "generation path (e.g. dfx-sim)")
    parser.add_argument("--num-devices", type=int, default=4,
                        help="cluster size (default 4, the paper's primary setup)")
    parser.add_argument("--output", type=Path, default=None,
                        help="where to write the benchmark JSON (default: the "
                             "per-config committed baseline, e.g. "
                             "BENCH_hotpath.json for tiny)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="embed pre-optimization numbers from this JSON")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline instead "
                             "of overwriting it; exit 1 on regression")
    parser.add_argument("--check-ratio", action="store_true",
                        help="hardware-independent gate: compare the "
                             "functional-vs-reference tokens/sec ratio against "
                             "the committed baseline; exit 1 on regression "
                             "(combines with --check)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional tokens/sec drop in --check mode")
    parser.add_argument("--ratio-tolerance", type=float, default=0.30,
                        help="allowed fractional drop of the functional-vs-"
                             "reference ratio in --check-ratio mode")
    args = parser.parse_args(argv)

    if args.batch is not None:
        new_tokens = (
            args.tokens[0] if args.tokens else DEFAULT_BATCHED_TOKENS[args.config]
        )
        output = args.output or DEFAULT_BATCHED_OUTPUTS[args.config]
        print(f"batched hot-path benchmark: config={args.config}, "
              f"devices={args.num_devices}, repeats={args.repeats}, "
              f"batches={args.batch}, tokens={new_tokens}")
        report = run_batched_benchmark(
            args.config, args.batch, new_tokens, args.repeats, args.num_devices
        )
        if args.check or args.check_ratio:
            return check_batched_regression(
                report, output, args.tolerance, args.ratio_tolerance
            )
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {output}")
        return 0

    committed_default = DEFAULT_OUTPUTS[args.config]
    if args.tokens is None:
        args.tokens = DEFAULT_TOKENS[args.config]
    if args.output is None:
        args.output = committed_default

    if (
        not (args.check or args.check_ratio)
        and set(args.engines) != set(DEFAULT_ENGINES)
        and args.output.resolve() in {p.resolve() for p in DEFAULT_OUTPUTS.values()}
    ):
        # The default outputs ARE the committed baselines the CI gates compare
        # against; a report missing the default engines would break --check
        # for everyone.  Checked before measuring so no work is wasted.
        print(f"ERROR: refusing to overwrite the committed baseline "
              f"{args.output.name} with a non-default engine set "
              f"{args.engines}; pass --output elsewhere")
        return 1

    print(f"hot-path benchmark: config={args.config}, "
          f"devices={args.num_devices}, repeats={args.repeats}, "
          f"engines={args.engines}")
    report = run_benchmark(args.config, args.tokens, args.repeats,
                           args.num_devices, engines=tuple(args.engines))

    if args.check or args.check_ratio:
        # One measurement feeds both gates; either failing fails the run.
        code = 0
        if args.check:
            code |= check_regression(report, args.output, args.tolerance)
        if args.check_ratio:
            code |= check_ratio_regression(report, args.output, args.ratio_tolerance)
        return code

    if args.baseline is not None:
        embed_baseline(report, args.baseline)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
