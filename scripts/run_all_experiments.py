"""Run every paper experiment and print a compact paper-vs-measured report.

This is the script used to populate EXPERIMENTS.md.  It exercises the same
experiment drivers as the benchmark harness but without pytest, so it can be
run directly:

    python scripts/run_all_experiments.py
    python scripts/run_all_experiments.py --section "figure 1"
    python scripts/run_all_experiments.py --list

Each section runs independently: a section that raises prints its traceback
and the script continues, exiting non-zero at the end if anything failed —
so CI sees a red run without one broken driver masking the rest.
``--section TEXT`` runs only the sections whose title contains TEXT
(case-insensitive), letting CI run slices instead of all-or-nothing.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import Callable

from repro.analysis import experiments
from repro.analysis.metrics import average_latency_ms
from repro.results import (
    PHASE_FFN,
    PHASE_LAYERNORM,
    PHASE_RESIDUAL,
    PHASE_SELF_ATTENTION,
    PHASE_SYNC,
)


def section_table1() -> None:
    for row in experiments.run_table1():
        print(f"{row['model']}: {row['parameters'] / 1e6:.0f}M params, "
              f"emb {row['embedding_dimension']}, heads {row['attention_heads']}, "
              f"head dim {row['head_dimension']}, layers {row['layers']}")


def section_figure3() -> None:
    fig3 = experiments.run_figure3()
    print(f"marginal output-token cost: {fig3.marginal_output_token_ms:.2f} ms (paper 75.45)")
    print(f"marginal input-token cost : {fig3.marginal_input_token_ms:.3f} ms (paper 0.02)")


def section_figure4() -> None:
    fig4 = experiments.run_figure4()
    print("latency fractions:", {k: round(v, 3) for k, v in fig4.latency_fractions.items()})
    print("operation fractions:", {k: round(v, 4) for k, v in fig4.operation_fractions.items()})


def section_figure8() -> None:
    fig8 = experiments.run_figure8()
    print("MHA GFLOP/s:", {k: round(v, 1) for k, v in fig8.mha_gflops.items()})
    print("chosen point:", fig8.cheapest_best_point())


def section_figure13() -> None:
    fig13 = experiments.run_figure13()
    totals = fig13.utilization()["total"]
    print({k: f"{100 * v:.1f}%" for k, v in totals.items()})


def section_figure14() -> None:
    fig14 = experiments.run_figure14()
    for column in fig14.columns:
        gpu_avg = average_latency_ms([row.baseline for row in column.rows])
        dfx_avg = average_latency_ms([row.dfx for row in column.rows])
        print(f"{column.setup.label}: GPU avg {gpu_avg:.0f} ms, DFX avg {dfx_avg:.0f} ms, "
              f"speedup {column.average_speedup:.2f}x")
        print("  per-workload DFX ms:",
              [round(row.dfx.latency_ms, 1) for row in column.rows])


def section_figure15() -> None:
    fig15 = experiments.run_figure15()
    order = (PHASE_SELF_ATTENTION, PHASE_FFN, PHASE_SYNC, PHASE_LAYERNORM, PHASE_RESIDUAL)
    print({phase: f"{100 * fig15.fractions[phase]:.1f}%" for phase in order})


def section_figure16() -> None:
    fig16 = experiments.run_figure16()
    print(f"throughput gain: {fig16.throughput_gain:.2f}x (paper 3.78)")
    print(f"energy-efficiency gain: {fig16.energy_efficiency_gain:.2f}x (paper 3.99)")


def section_figure17() -> None:
    fig17 = experiments.run_figure17()
    for stage in (fig17.gpu, fig17.tpu, fig17.dfx):
        print(f"{stage.platform:>14s}: summarization {stage.summarization_gflops:7.1f}, "
              f"generation {stage.generation_gflops:7.1f}, total {stage.total_gflops:7.1f}")


def section_figure18() -> None:
    fig18 = experiments.run_figure18()
    for count, tokens in zip(fig18.device_counts, fig18.tokens_per_second):
        print(f"{count} FPGA(s): {tokens:.2f} tokens/s")
    print("scaling factors:", [round(f, 2) for f in fig18.scaling_factors()])


def section_table2() -> None:
    table2 = experiments.run_table2()
    print(f"GPU: {table2.gpu.tokens_per_second:.2f} tokens/s, "
          f"${table2.gpu.accelerator_cost_usd:,.0f}, "
          f"{table2.gpu.tokens_per_second_per_million_usd:.1f} tokens/s/M$")
    print(f"DFX: {table2.dfx.tokens_per_second:.2f} tokens/s, "
          f"${table2.dfx.accelerator_cost_usd:,.0f}, "
          f"{table2.dfx.tokens_per_second_per_million_usd:.1f} tokens/s/M$")
    print(f"cost-effectiveness gain: {table2.cost_effectiveness_gain:.2f}x (paper 8.21)")


def section_accuracy() -> None:
    for comparison in experiments.run_accuracy_comparison():
        print(f"{comparison.dataset_name}: GPU {100 * comparison.gpu.accuracy:.1f}%, "
              f"DFX {100 * comparison.dfx.accuracy:.1f}%, "
              f"delta {100 * comparison.accuracy_delta:+.2f}%, "
              f"agreement {100 * comparison.agreement:.1f}%")


def section_dse() -> None:
    result = experiments.run_design_space_exploration(
        mode="evolutionary", population_size=6, generations=3, seed=0
    )
    print(f"evaluated {result.num_evaluated} candidates "
          f"({result.num_feasible} feasible); Pareto front:")
    for member in result.front:
        values = {name: round(value, 4)
                  for name, value in member.vector.as_dict().items()}
        print(f"  {member.candidate.key}: {values}")
    fig8_dse = experiments.run_figure8_dse()
    print("Fig. 8 slice front:", fig8_dse.front_points())


#: Every report section: title -> renderer.  Order matches the paper.
SECTIONS: tuple[tuple[str, Callable[[], None]], ...] = (
    ("Table I — model configurations", section_table1),
    ("Figure 3 — GPU sequential bottleneck (1.5B, 4 GPUs)", section_figure3),
    ("Figure 4 — GPU breakdown", section_figure4),
    ("Figure 8 — tile-shape DSE", section_figure8),
    ("Figure 13 — resource utilization (d=64, l=16)", section_figure13),
    ("Figure 14 — latency grid", section_figure14),
    ("Figure 15 — DFX latency breakdown (1.5B, 4 FPGAs, 64:64)", section_figure15),
    ("Figure 16 — throughput and energy efficiency (1.5B)", section_figure16),
    ("Figure 17 — GFLOP/s by platform (345M, 64:64)", section_figure17),
    ("Figure 18 — scalability (345M, 64:64)", section_figure18),
    ("Table II — cost analysis (1.5B, 64:64)", section_table2),
    ("Sec. VII-A — accuracy comparison (synthetic cloze stand-ins)", section_accuracy),
    ("DSE — appliance design-space exploration (Pareto front)", section_dse),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--section", default=None, metavar="TEXT",
                        help="run only sections whose title contains TEXT "
                             "(case-insensitive substring)")
    parser.add_argument("--list", action="store_true",
                        help="list section titles and exit")
    args = parser.parse_args(argv)

    if args.list:
        for title, _ in SECTIONS:
            print(title)
        return 0

    selected = [
        (title, renderer)
        for title, renderer in SECTIONS
        if args.section is None or args.section.lower() in title.lower()
    ]
    if not selected:
        print(f"no section title contains {args.section!r}", file=sys.stderr)
        return 2

    print("DFX reproduction — experiment report")
    failures = []
    for title, renderer in selected:
        print()
        print(f"### {title}")
        try:
            renderer()
        except Exception:
            failures.append(title)
            traceback.print_exc()
    if failures:
        print()
        print(f"{len(failures)} section(s) failed: {failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
