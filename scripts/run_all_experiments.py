"""Run every paper experiment and print a compact paper-vs-measured report.

This is the script used to populate EXPERIMENTS.md.  It exercises the same
experiment drivers as the benchmark harness but without pytest, so it can be
run directly:

    python scripts/run_all_experiments.py
"""

from __future__ import annotations

from repro.analysis import experiments
from repro.analysis.metrics import average_latency_ms
from repro.results import (
    PHASE_FFN,
    PHASE_LAYERNORM,
    PHASE_RESIDUAL,
    PHASE_SELF_ATTENTION,
    PHASE_SYNC,
)


def section(title: str) -> None:
    print()
    print(f"### {title}")


def main() -> None:
    print("DFX reproduction — experiment report")

    section("Table I — model configurations")
    for row in experiments.run_table1():
        print(f"{row['model']}: {row['parameters'] / 1e6:.0f}M params, "
              f"emb {row['embedding_dimension']}, heads {row['attention_heads']}, "
              f"head dim {row['head_dimension']}, layers {row['layers']}")

    section("Figure 3 — GPU sequential bottleneck (1.5B, 4 GPUs)")
    fig3 = experiments.run_figure3()
    print(f"marginal output-token cost: {fig3.marginal_output_token_ms:.2f} ms (paper 75.45)")
    print(f"marginal input-token cost : {fig3.marginal_input_token_ms:.3f} ms (paper 0.02)")

    section("Figure 4 — GPU breakdown")
    fig4 = experiments.run_figure4()
    print("latency fractions:", {k: round(v, 3) for k, v in fig4.latency_fractions.items()})
    print("operation fractions:", {k: round(v, 4) for k, v in fig4.operation_fractions.items()})

    section("Figure 8 — tile-shape DSE")
    fig8 = experiments.run_figure8()
    print("MHA GFLOP/s:", {k: round(v, 1) for k, v in fig8.mha_gflops.items()})
    print("chosen point:", fig8.cheapest_best_point())

    section("Figure 13 — resource utilization (d=64, l=16)")
    fig13 = experiments.run_figure13()
    totals = fig13.utilization()["total"]
    print({k: f"{100 * v:.1f}%" for k, v in totals.items()})

    section("Figure 14 — latency grid")
    fig14 = experiments.run_figure14()
    for column in fig14.columns:
        gpu_avg = average_latency_ms([row.baseline for row in column.rows])
        dfx_avg = average_latency_ms([row.dfx for row in column.rows])
        print(f"{column.setup.label}: GPU avg {gpu_avg:.0f} ms, DFX avg {dfx_avg:.0f} ms, "
              f"speedup {column.average_speedup:.2f}x")
        print("  per-workload DFX ms:",
              [round(row.dfx.latency_ms, 1) for row in column.rows])

    section("Figure 15 — DFX latency breakdown (1.5B, 4 FPGAs, 64:64)")
    fig15 = experiments.run_figure15()
    order = (PHASE_SELF_ATTENTION, PHASE_FFN, PHASE_SYNC, PHASE_LAYERNORM, PHASE_RESIDUAL)
    print({phase: f"{100 * fig15.fractions[phase]:.1f}%" for phase in order})

    section("Figure 16 — throughput and energy efficiency (1.5B)")
    fig16 = experiments.run_figure16()
    print(f"throughput gain: {fig16.throughput_gain:.2f}x (paper 3.78)")
    print(f"energy-efficiency gain: {fig16.energy_efficiency_gain:.2f}x (paper 3.99)")

    section("Figure 17 — GFLOP/s by platform (345M, 64:64)")
    fig17 = experiments.run_figure17()
    for stage in (fig17.gpu, fig17.tpu, fig17.dfx):
        print(f"{stage.platform:>14s}: summarization {stage.summarization_gflops:7.1f}, "
              f"generation {stage.generation_gflops:7.1f}, total {stage.total_gflops:7.1f}")

    section("Figure 18 — scalability (345M, 64:64)")
    fig18 = experiments.run_figure18()
    for count, tokens in zip(fig18.device_counts, fig18.tokens_per_second):
        print(f"{count} FPGA(s): {tokens:.2f} tokens/s")
    print("scaling factors:", [round(f, 2) for f in fig18.scaling_factors()])

    section("Table II — cost analysis (1.5B, 64:64)")
    table2 = experiments.run_table2()
    print(f"GPU: {table2.gpu.tokens_per_second:.2f} tokens/s, "
          f"${table2.gpu.accelerator_cost_usd:,.0f}, "
          f"{table2.gpu.tokens_per_second_per_million_usd:.1f} tokens/s/M$")
    print(f"DFX: {table2.dfx.tokens_per_second:.2f} tokens/s, "
          f"${table2.dfx.accelerator_cost_usd:,.0f}, "
          f"{table2.dfx.tokens_per_second_per_million_usd:.1f} tokens/s/M$")
    print(f"cost-effectiveness gain: {table2.cost_effectiveness_gain:.2f}x (paper 8.21)")

    section("Sec. VII-A — accuracy comparison (synthetic cloze stand-ins)")
    for comparison in experiments.run_accuracy_comparison():
        print(f"{comparison.dataset_name}: GPU {100 * comparison.gpu.accuracy:.1f}%, "
              f"DFX {100 * comparison.dfx.accuracy:.1f}%, "
              f"delta {100 * comparison.accuracy_delta:+.2f}%, "
              f"agreement {100 * comparison.agreement:.1f}%")


if __name__ == "__main__":
    main()
