#!/usr/bin/env python
"""Streaming serving-simulator benchmark and regression gate.

Serves a lazily generated diurnal request trace (1M requests by default)
through the streaming simulator core — calendar-queue event loop, online
report accounting, no retained records — and writes simulated requests/sec
plus peak RSS to ``BENCH_serving.json`` at the repo root.  That file is the
committed baseline: ``--check`` re-measures and fails (exit 1) when
throughput regresses beyond the tolerance or memory stops being flat.

Each measurement runs in a fresh subprocess so peak RSS (``ru_maxrss``) is
a clean per-run high-water mark.  Two trace lengths are measured — the full
``--limit`` and a ``--short-limit`` warm-up-sized run — and their RSS ratio
is the *memory-flatness* gate: with streaming accounting a 10x longer trace
must not grow resident memory by more than ``--flatness`` (the trace is
never materialized and the report is O(1) in the trace length), which holds
on any host speed, unlike the absolute req/s floor.

Examples::

    PYTHONPATH=src python scripts/bench_serving.py            # refresh baseline
    PYTHONPATH=src python scripts/bench_serving.py --check    # regression gate
    PYTHONPATH=src python scripts/bench_serving.py --limit 200000 --check
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

SCHEMA_VERSION = 1
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_serving.json"

#: The benchmark scenario: a diurnal trace over the datacenter mix served
#: by eight DFX clusters (sustained capacity ~7.5 req/s).  The peak rate
#: oversubscribes the appliance at the top of the cycle (~1.2x) while the
#: cycle mean (~5 req/s) stays under capacity, so the queue builds through
#: every peak and drains through every trough — the realistic breathing
#: regime for the event core, and a bounded one (an always-oversubscribed
#: trace would grow the queue, and resident memory, without limit).
PEAK_RATE_PER_S = 9.0
PERIOD_S = 3600.0
SEED = 7
NUM_CLUSTERS = 8
BACKEND = "dfx"


def _probe(limit: int) -> dict:
    """Serve ``limit`` diurnal requests in-process; return the measurement.

    Runs inside the ``--probe`` subprocess so ``ru_maxrss`` is this run's
    own high-water mark, not a previous (longer) run's.
    """
    import resource
    import time

    from repro.serving.requests import DATACENTER_MIX, diurnal_trace
    from repro.serving.server import ApplianceServer

    trace = diurnal_trace(
        PEAK_RATE_PER_S,
        1e12,  # effectively unbounded window: ``limit`` ends the trace
        period_s=PERIOD_S,
        mix=DATACENTER_MIX,
        seed=SEED,
        limit=limit,
        lazy=True,
    )
    server = ApplianceServer(
        BACKEND, num_clusters=NUM_CLUSTERS, retain_records=False
    )
    start = time.perf_counter()
    report = server.serve(trace)
    wall_s = time.perf_counter() - start
    peak_rss_mib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "requests": limit,
        "completed": report.num_requests,
        "wall_s": round(wall_s, 3),
        "requests_per_second": round(report.num_requests / wall_s, 1),
        "p99_response_s": round(report.response_time_percentile_s(99), 3),
        "peak_rss_mib": round(peak_rss_mib, 1),
    }


def _probe_subprocess(limit: int) -> dict:
    """Run one measurement in a fresh interpreter and parse its JSON."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    completed = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--probe", str(limit)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if completed.returncode != 0:
        print(completed.stdout)
        print(completed.stderr, file=sys.stderr)
        raise SystemExit(f"probe subprocess failed (limit={limit})")
    return json.loads(completed.stdout)


def run_benchmark(limit: int, short_limit: int) -> dict:
    """Measure the short and full trace lengths; derive the flatness ratio."""
    print(f"serving bench: {BACKEND} x{NUM_CLUSTERS}, diurnal "
          f"peak={PEAK_RATE_PER_S}/s period={PERIOD_S}s seed={SEED}")
    short = _probe_subprocess(short_limit)
    print(f"  {short_limit:>9,} requests: {short['wall_s']:7.2f}s  "
          f"{short['requests_per_second']:9,.0f} req/s  "
          f"RSS {short['peak_rss_mib']:6.1f} MiB")
    full = _probe_subprocess(limit)
    print(f"  {limit:>9,} requests: {full['wall_s']:7.2f}s  "
          f"{full['requests_per_second']:9,.0f} req/s  "
          f"RSS {full['peak_rss_mib']:6.1f} MiB")
    rss_ratio = full["peak_rss_mib"] / short["peak_rss_mib"]
    print(f"  RSS ratio (long/short): {rss_ratio:.3f}")
    return {
        "schema": SCHEMA_VERSION,
        "backend": BACKEND,
        "num_clusters": NUM_CLUSTERS,
        "arrivals": {
            "process": "diurnal",
            "peak_rate_per_s": PEAK_RATE_PER_S,
            "period_s": PERIOD_S,
            "mix": "datacenter",
            "seed": SEED,
        },
        "short": short,
        "full": full,
        "rss_ratio": round(rss_ratio, 3),
    }


def check_regression(
    report: dict, committed_path: Path, tolerance: float, flatness: float
) -> int:
    """Gate a fresh measurement against the committed baseline.

    Throughput is compared per-request (simulated req/s), so a ``--check``
    at a shorter ``--limit`` than the baseline's still compares fairly —
    the streaming core is O(1) amortized per event.  The flatness gate is
    absolute (and hardware-independent): the long/short RSS ratio must stay
    under ``flatness`` regardless of what the baseline machine measured.
    """
    if not committed_path.exists():
        print(f"ERROR: no committed baseline at {committed_path}")
        return 1
    committed = json.loads(committed_path.read_text())
    failures = []
    floor = committed["full"]["requests_per_second"] * (1.0 - tolerance)
    measured = report["full"]["requests_per_second"]
    if measured < floor:
        failures.append(
            f"throughput: {measured:,.0f} simulated req/s < floor {floor:,.0f} "
            f"(committed {committed['full']['requests_per_second']:,.0f}, "
            f"tolerance {tolerance:.0%})"
        )
    if report["rss_ratio"] > flatness:
        failures.append(
            f"memory: RSS grew {report['rss_ratio']:.2f}x from "
            f"{report['short']['requests']:,} to "
            f"{report['full']['requests']:,} requests "
            f"(flatness bound {flatness:.2f}x) — streaming accounting is "
            f"retaining per-request state"
        )
    if failures:
        print("SERVING PERF REGRESSION DETECTED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"serving perf check OK: {measured:,.0f} req/s "
          f"(floor {floor:,.0f}), RSS ratio {report['rss_ratio']:.2f} "
          f"(bound {flatness:.2f})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])

    def positive(value: str) -> int:
        parsed = int(value)
        if parsed <= 0:
            raise argparse.ArgumentTypeError(f"must be positive, got {value}")
        return parsed

    parser.add_argument("--limit", type=positive, default=1_000_000,
                        help="full-run trace length in requests "
                             "(default: 1,000,000)")
    parser.add_argument("--short-limit", type=positive, default=100_000,
                        help="short-run trace length for the memory-"
                             "flatness ratio (default: 100,000)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the benchmark JSON")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline instead "
                             "of overwriting it; exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.50,
                        help="allowed fractional simulated-req/s drop in "
                             "--check mode (default: 0.50 — absolute req/s "
                             "is machine-dependent)")
    parser.add_argument("--flatness", type=float, default=1.30,
                        help="max allowed long/short peak-RSS ratio in "
                             "--check mode (default: 1.30)")
    parser.add_argument("--probe", type=positive, default=None,
                        metavar="LIMIT",
                        help=argparse.SUPPRESS)  # internal subprocess mode
    args = parser.parse_args(argv)

    if args.probe is not None:
        print(json.dumps(_probe(args.probe)))
        return 0
    if args.short_limit >= args.limit:
        parser.error("--short-limit must be below --limit")

    report = run_benchmark(args.limit, args.short_limit)
    if args.check:
        return check_regression(
            report, args.output, args.tolerance, args.flatness
        )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
